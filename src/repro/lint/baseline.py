"""Committed lint baselines: grandfather known findings, fail on new ones.

The baseline file maps finding fingerprints (line-number free, see
`Finding.fingerprint`) to occurrence counts.  A run is *clean* when no
fingerprint occurs more often than the baseline allows — so fixing a
finding never breaks the gate, while introducing one (even a second
copy of a grandfathered one) does.
"""

from __future__ import annotations

import json
from collections import Counter

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or malformed."""


def load_baseline(path: str) -> dict[str, int]:
    """Read a baseline file into {fingerprint: allowed_count}."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path!r} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    out: dict[str, int] = {}
    for entry in data.get("findings", []):
        fp = entry.get("fingerprint")
        if not isinstance(fp, str):
            raise BaselineError(f"baseline {path!r} entry missing fingerprint")
        out[fp] = out.get(fp, 0) + int(entry.get("count", 1))
    return out


def write_baseline(path: str, findings: list[Finding]) -> None:
    """Persist the given findings as the new baseline."""
    by_fp: dict[str, dict] = {}
    for f in findings:
        entry = by_fp.setdefault(
            f.fingerprint,
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "message": f.message,
                "count": 0,
            },
        )
        entry["count"] += 1
    data = {
        "version": BASELINE_VERSION,
        "findings": sorted(
            by_fp.values(), key=lambda e: (e["path"], e["rule"], e["fingerprint"])
        ),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=False)
        f.write("\n")


def new_findings(findings: list[Finding], baseline: dict[str, int]) -> list[Finding]:
    """Findings exceeding their baseline allowance, in scan order."""
    seen: Counter[str] = Counter()
    out: list[Finding] = []
    for f in findings:
        seen[f.fingerprint] += 1
        if seen[f.fingerprint] > baseline.get(f.fingerprint, 0):
            out.append(f)
    return out

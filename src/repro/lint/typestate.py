"""Flow-sensitive lifecycle rules over engine objects (LIF*/RES*).

Tracks abstract lifecycle states of driver-side engine objects through
each function's CFG (`repro.lint.cfg`) with the forward fixpoint solver
(`repro.lint.dataflow`):

- ``SparkContext``/``StreamingContext``: *open* → *stopped* (``stop()``
  or leaving a ``with`` block);
- ``EventLog``: *open* → *closed*;
- ``RDD``: *live* → *persisted* (``persist()``/``cache()``) →
  *unpersisted*;
- ``Broadcast``: *live* → *unpersisted* (``unpersist()``/``destroy()``);
- ``TrackedLock`` and the ``threading`` lock family: *released* ⇄
  *held* (``acquire()``/``release()`` or ``with``).

A variable's abstract value is the *set* of (state, site) pairs over
all paths reaching a program point; the join is set union.  The
use-after rules fire only when the set is non-empty and every entry is
dead — i.e. the object is stopped/closed/unpersisted on **all** paths
(a release in just one branch joins to a mixed set and stays silent).
The leak rules are may-analyses over the CFG's two exit blocks: RES001
fires when a *persisted* entry survives to the normal exit without the
RDD escaping the function, RES002 when a *held* lock or *open* locally
created context reaches the raise exit (the ``with``-less pattern —
``with`` blocks and ``try/finally`` releases are modelled by the CFG's
cleanup duplication, so they never fire).

Interprocedural layer: calls into same-project functions (resolved via
`repro.lint.callgraph.Project`) are summarised — which methods a callee
surely/possibly applies to each parameter, and whether the parameter
escapes — so ``shutdown(sc)`` followed by ``sc.parallelize(...)`` is a
use-after-stop, and a helper that unpersists its argument discharges
RES001 at the call site.

Rules (each finding carries the acquire/transition site as a SARIF
``relatedLocation``):

- ``LIF001`` use-after-stop (SparkContext/StreamingContext)
- ``LIF002`` write-after-close (EventLog)
- ``LIF003`` action-after-unpersist (RDD actions, ``Broadcast.value``)
- ``RES001`` persist/cache with no unpersist on some exit path
- ``RES002`` lock/context acquired but not released on an exception path
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .cfg import CFG, ExceptBind, ForBind, WithEnter, WithExit, build_cfg
from .closures import ModuleAnalysis, Scope, _loads_in, _target_names
from .dataflow import ForwardAnalysis, solve
from .findings import Finding

# -- lifecycle tables ---------------------------------------------------------

#: type tag (from closures' inference) -> resource kind
KIND_OF_TAG = {
    "SparkContext": "context",
    "StreamingContext": "context",
    "EventLog": "eventlog",
    "RDD": "rdd",
    "Broadcast": "broadcast",
    "Lock": "lock",
}

#: kind -> state a fresh constructor call starts in
INIT_STATE = {
    "context": "open",
    "eventlog": "open",
    "rdd": "live",
    "broadcast": "live",
    "lock": "released",
}

#: kind -> {method: state} transitions that *release* (safe to assume
#: done when the instruction raises mid-flight)
RELEASE = {
    "context": {"stop": "stopped"},
    "eventlog": {"close": "closed"},
    "rdd": {"unpersist": "unpersisted"},
    "broadcast": {"unpersist": "unpersisted", "destroy": "unpersisted"},
    "lock": {"release": "released"},
}

#: kind -> {method: state} transitions that *acquire* (assumed NOT done
#: when the instruction raises)
ACQUIRE = {
    "rdd": {"persist": "persisted", "cache": "persisted"},
    "lock": {"acquire": "held"},
}

#: kind -> state applied when a ``with`` block over the object exits
WITH_EXIT_STATE = {"context": "stopped", "eventlog": "closed", "lock": "released"}

#: kind -> state applied when a ``with`` block over the object enters
WITH_ENTER_STATE = {"lock": "held"}

#: kind -> states in which the object is dead for its use-set
DEAD_STATES = {
    "context": {"stopped"},
    "eventlog": {"closed"},
    "rdd": {"unpersisted"},
    "broadcast": {"unpersisted"},
}

#: kind -> methods that *use* the live object (LIF rules fire on these)
USES = {
    "context": {
        "parallelize", "text_file", "from_source", "broadcast",
        "accumulator", "list_accumulator", "run_job",
    },
    "eventlog": {"emit", "record_job"},
    "rdd": {
        "collect", "count", "reduce", "take", "take_ordered", "first",
        "sum", "fold", "aggregate", "foreach", "foreach_partition",
        "foreach_partition_with_index",
    },
    "broadcast": set(),     # uses are ``.value`` reads, handled separately
}

#: kind -> LIF rule id for a use of a definitely-dead object
USE_RULE = {"context": "LIF001", "eventlog": "LIF002", "rdd": "LIF003",
            "broadcast": "LIF003"}

#: kind -> past-tense transition verb for related-location messages
DEAD_VERB = {"context": "stopped", "eventlog": "closed", "rdd": "unpersisted",
             "broadcast": "unpersisted"}

TYPESTATE_RULES = ("LIF001", "LIF002", "LIF003", "RES001", "RES002")


# -- abstract state -----------------------------------------------------------

#: one abstract fact about a variable: (kind, state, transition line)
Entry = tuple  # (str, str, int)


@dataclass(eq=True)
class TState:
    """Lattice value: per-variable entry sets plus the escaped-name set."""

    vars: dict = field(default_factory=dict)       # key -> frozenset[Entry]
    escaped: frozenset = frozenset()

    def copy(self) -> "TState":
        return TState(vars=dict(self.vars), escaped=self.escaped)


def _var_key(expr: ast.AST) -> str | None:
    """Stable key for a trackable reference: a bare name (``sc``) or a
    name-rooted attribute chain (``self.sc``, ``state.sc``)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _definitely(entries: frozenset, kind: str) -> bool:
    """True when every fact says the object is dead for ``kind``."""
    dead = DEAD_STATES.get(kind, set())
    return bool(entries) and all(
        k == kind and s in dead for (k, s, _line) in entries
    )


def _dead_sites(entries: frozenset) -> list[int]:
    return sorted({line for (_k, _s, line) in entries})


# -- interprocedural summaries ------------------------------------------------

@dataclass
class Summary:
    """What a callee does to each of its parameters, by name."""

    must: dict = field(default_factory=dict)   # param -> frozenset[methods]
    may: dict = field(default_factory=dict)    # param -> frozenset[methods]
    escapes: frozenset = frozenset()           # params that escape the callee


class _SummaryAnalysis(ForwardAnalysis):
    """Per-path set of methods applied to each parameter.

    State: ``None`` (top / unreached on this path — identity of join)
    or a dict param -> frozenset of method names applied so far.  The
    *may* side is accumulated separately as a plain union during the
    emission walk; the solver's intersection-join over normal-exit
    paths yields *must*.
    """

    def __init__(self, checker: "_FunctionChecker", params: list[str]):
        self.checker = checker
        self.params = params

    def initial_state(self):
        return {p: frozenset() for p in self.params}

    def bottom(self):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return {p: a[p] & b[p] for p in self.params}

    def transfer(self, state, instr):
        if state is None:
            return None
        methods = self.checker.param_methods(instr, set(self.params))
        if not methods:
            return state
        out = dict(state)
        for p, ms in methods.items():
            out[p] = out[p] | ms
        return out

    def exc_state(self, state, instr):
        return state


# -- the lifecycle analysis ---------------------------------------------------

class _LifecycleAnalysis(ForwardAnalysis):
    def __init__(self, checker: "_FunctionChecker"):
        self.checker = checker

    def initial_state(self) -> TState:
        return TState(escaped=frozenset(self.checker.pre_escaped))

    def bottom(self) -> TState | None:
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        vars_out = dict(a.vars)
        for key, entries in b.vars.items():
            vars_out[key] = vars_out.get(key, frozenset()) | entries
        return TState(vars=vars_out, escaped=a.escaped | b.escaped)

    def transfer(self, state, instr):
        if state is None:
            return None
        return self.checker.apply(state, instr, exceptional=False)

    def exc_state(self, state, instr):
        if state is None:
            return None
        return self.checker.apply(state, instr, exceptional=True)


class _FunctionChecker:
    """Typestate pass over one function: transfer semantics, the check
    walk, and the summary hooks."""

    def __init__(self, cache: "_FlowCache", analysis: ModuleAnalysis,
                 func_node: ast.AST):
        self.cache = cache
        self.project = cache.project
        self.analysis = analysis
        self.func = func_node
        self.scope: Scope = analysis.scope_of(func_node)
        # Names read by nested defs/lambdas escape this function's
        # flow-sensitive view from the start.
        self.pre_escaped: set[str] = set()
        for stmt in getattr(func_node, "body", []):
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                    self.pre_escaped.update(n.id for n in _loads_in(sub))

    # -- kind resolution ------------------------------------------------------
    def _kind_of(self, state: TState, key: str, expr: ast.AST) -> str | None:
        entries = state.vars.get(key)
        if entries:
            kinds = {k for (k, _s, _l) in entries}
            if len(kinds) == 1:
                return next(iter(kinds))
        tag = self.analysis.expr_type(expr, self.scope)
        return KIND_OF_TAG.get(tag) if tag else None

    def _fresh_entries(self, value: ast.AST, line: int) -> frozenset | None:
        """Entries for a binding from a constructor/factory call."""
        if not isinstance(value, ast.Call):
            return None
        tag = self.analysis.expr_type(value, self.scope)
        kind = KIND_OF_TAG.get(tag) if tag else None
        if kind is None:
            return None
        return frozenset({(kind, INIT_STATE[kind], line)})

    # -- transfer -------------------------------------------------------------
    def apply(self, state: TState, instr, exceptional: bool) -> TState:
        out = state.copy()
        if isinstance(instr, ForBind):
            for name in _target_names(instr.target):
                out.vars.pop(name, None)
            return out
        if isinstance(instr, ExceptBind):
            if instr.name:
                out.vars.pop(instr.name, None)
            return out
        if isinstance(instr, WithEnter):
            return self._with_enter(out, instr)
        if isinstance(instr, WithExit):
            return self._with_exit(out, instr)
        if not isinstance(instr, ast.AST):
            return out
        if isinstance(instr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.vars.pop(getattr(instr, "name", ""), None)
            return out
        for call in _calls_within(instr):
            self._apply_call(out, call, exceptional)
        self._apply_escapes(out, instr)
        if not exceptional:
            self._apply_binding(out, instr)
        return out

    def _with_enter(self, out: TState, instr: WithEnter) -> TState:
        item = instr.item
        ctx_key = _var_key(item.context_expr)
        target = None
        if item.optional_vars is not None and isinstance(item.optional_vars, ast.Name):
            target = item.optional_vars.id
        fresh = self._fresh_entries(item.context_expr, instr.lineno)
        if fresh is not None:
            key = target or ctx_key
            if key:
                out.vars[key] = fresh
        elif ctx_key is not None:
            kind = self._kind_of(out, ctx_key, item.context_expr)
            if kind in WITH_ENTER_STATE:
                out.vars[ctx_key] = frozenset(
                    {(kind, WITH_ENTER_STATE[kind], instr.lineno)}
                )
            if target and ctx_key in out.vars:
                out.vars[target] = out.vars[ctx_key]
        return out

    def _with_exit(self, out: TState, instr: WithExit) -> TState:
        for item in instr.items:
            keys = []
            if item.optional_vars is not None and isinstance(item.optional_vars, ast.Name):
                keys.append(item.optional_vars.id)
            ctx_key = _var_key(item.context_expr)
            if ctx_key is not None:
                keys.append(ctx_key)
            for key in keys:
                entries = out.vars.get(key)
                if not entries:
                    continue
                kinds = {k for (k, _s, _l) in entries}
                if len(kinds) == 1:
                    kind = next(iter(kinds))
                    if kind in WITH_EXIT_STATE:
                        out.vars[key] = frozenset(
                            {(kind, WITH_EXIT_STATE[kind], instr.lineno)}
                        )
        return out

    def _apply_call(self, out: TState, call: ast.Call, exceptional: bool) -> None:
        recv_key = None
        if isinstance(call.func, ast.Attribute):
            recv_key = _var_key(call.func.value)
            if recv_key is not None:
                method = call.func.attr
                kind = self._kind_of(out, recv_key, call.func.value)
                if kind is not None:
                    if method in RELEASE.get(kind, {}):
                        out.vars[recv_key] = frozenset(
                            {(kind, RELEASE[kind][method], call.lineno)}
                        )
                        return
                    if method in ACQUIRE.get(kind, {}):
                        if not exceptional:
                            out.vars[recv_key] = frozenset(
                                {(kind, ACQUIRE[kind][method], call.lineno)}
                            )
                        return
        # Same-project callee: apply its parameter summary to tracked
        # arguments; unresolved callees make tracked arguments escape.
        resolved = self.cache.resolve(self.analysis, self.scope, call)
        summary = None
        offset = 0
        if resolved is not None:
            mod, node = resolved
            summary = self.cache.summary(mod, node)
            offset = _self_offset(node, call)
        for name, arg in _tracked_args(call, resolved, offset):
            if arg is None or arg not in out.vars:
                continue
            if summary is None or name is None:
                out.escaped = out.escaped | {arg}
                continue
            if name in summary.escapes:
                out.escaped = out.escaped | {arg}
            entries = out.vars[arg]
            kinds = {k for (k, _s, _l) in entries}
            kind = next(iter(kinds)) if len(kinds) == 1 else None
            if kind is None:
                continue
            must = summary.must.get(name, frozenset())
            may = summary.may.get(name, frozenset())
            for m in sorted(may):
                table = RELEASE.get(kind, {})
                atable = ACQUIRE.get(kind, {})
                new_state = table.get(m) or (
                    None if exceptional else atable.get(m)
                )
                if new_state is None:
                    continue
                transitioned = frozenset({(kind, new_state, call.lineno)})
                if m in must:
                    entries = transitioned
                else:
                    entries = entries | transitioned
            out.vars[arg] = entries

    def _apply_escapes(self, out: TState, instr: ast.AST) -> None:
        values: list[ast.AST] = []
        if isinstance(instr, ast.Return) and instr.value is not None:
            values.append(instr.value)
        for sub in ast.walk(instr):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
                values.append(sub.value)
        if isinstance(instr, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript, ast.Tuple, ast.List))
                for t in instr.targets
            ):
                values.append(instr.value)
            elif isinstance(instr.value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                values.append(instr.value)
        names: set[str] = set()
        for value in values:
            names |= _value_names(value)
        tracked = {n for n in names if n in out.vars}
        if tracked:
            out.escaped = out.escaped | frozenset(tracked)

    def _apply_binding(self, out: TState, instr: ast.AST) -> None:
        target_names: list[str] = []
        value: ast.AST | None = None
        if isinstance(instr, ast.Assign):
            value = instr.value
            for t in instr.targets:
                if isinstance(t, ast.Name):
                    target_names.append(t.id)
                elif isinstance(t, ast.Attribute):
                    key = _var_key(t)
                    if key:
                        target_names.append(key)
        elif isinstance(instr, ast.AnnAssign) and instr.value is not None:
            value = instr.value
            if isinstance(instr.target, ast.Name):
                target_names.append(instr.target.id)
            elif isinstance(instr.target, ast.Attribute):
                key = _var_key(instr.target)
                if key:
                    target_names.append(key)
        elif isinstance(instr, ast.Delete):
            for t in instr.targets:
                key = _var_key(t)
                if key:
                    out.vars.pop(key, None)
            return
        if not target_names or value is None:
            return
        entries = self._binding_entries(out, value)
        for name in target_names:
            if entries is not None:
                out.vars[name] = entries
            else:
                out.vars.pop(name, None)
        # Attribute-rooted targets outlive the function; the RES rules
        # must not claim ownership of them (LIF ordering still applies).
        dotted = [n for n in target_names if "." in n]
        if dotted:
            out.escaped = out.escaped | frozenset(dotted)

    def _binding_entries(self, state: TState, value: ast.AST) -> frozenset | None:
        key = _var_key(value)
        if key is not None:
            return state.vars.get(key)    # alias copies the facts
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            recv_key = _var_key(value.func.value)
            method = value.func.attr
            if recv_key is not None and (
                method in ("persist", "cache", "unpersist")
            ):
                return state.vars.get(recv_key)   # chain returns receiver
        return self._fresh_entries(value, getattr(value, "lineno", 0))

    # -- summary hooks --------------------------------------------------------
    def param_methods(self, instr, params: set[str]) -> dict:
        """{param: methods applied by this instruction} (incl. through
        resolved callees), plus escape recording via the summary cache."""
        out: dict[str, frozenset] = {}
        if isinstance(instr, (WithEnter, WithExit, ForBind, ExceptBind)):
            if isinstance(instr, WithExit):
                for item in instr.items:
                    key = _var_key(item.context_expr)
                    if key in params:
                        out[key] = out.get(key, frozenset()) | {"__with_exit__"}
            return out
        if not isinstance(instr, ast.AST):
            return out
        for call in _calls_within(instr):
            if isinstance(call.func, ast.Attribute):
                key = _var_key(call.func.value)
                if key in params:
                    out[key] = out.get(key, frozenset()) | {call.func.attr}
                    continue
            resolved = self.cache.resolve(self.analysis, self.scope, call)
            summary = None
            offset = 0
            if resolved is not None:
                mod, node = resolved
                summary = self.cache.summary(mod, node)
                offset = _self_offset(node, call)
            for name, arg in _tracked_args(call, resolved, offset):
                if arg not in params:
                    continue
                if summary is None or name is None:
                    out[arg] = out.get(arg, frozenset()) | {"__escape__"}
                    continue
                methods = summary.may.get(name, frozenset())
                if name in summary.escapes:
                    methods = methods | {"__escape__"}
                if methods:
                    out[arg] = out.get(arg, frozenset()) | methods
        for name in _escaping_names(instr):
            if name in params:
                out[name] = out.get(name, frozenset()) | {"__escape__"}
        return out

    # -- the check walk -------------------------------------------------------
    def check(self) -> list[Finding]:
        cfg = self.cache.cfg(self.func)
        analysis = _LifecycleAnalysis(self)
        states = solve(cfg, analysis)
        findings: list[Finding] = []
        seen: set[tuple] = set()

        def emit(rule: str, line: int, col: int, message: str,
                 related: list[tuple[int, str]]) -> None:
            key = (rule, line, col, message)
            if key in seen:
                return
            seen.add(key)
            findings.append(Finding(
                rule=rule,
                path=self.analysis.path,
                line=line,
                col=col,
                message=message,
                symbol=self.scope.name,
                related=tuple(
                    (self.analysis.path, rline, rmsg) for rline, rmsg in related
                ),
            ))

        for bid in sorted(cfg.blocks):
            if bid not in states.in_states:
                continue
            st = states.in_states[bid]
            if st is None:
                continue
            for instr in cfg.blocks[bid].instrs:
                self._check_instr(st, instr, emit)
                st = self.apply(st, instr, exceptional=False)

        exit_st = states.in_states.get(cfg.exit)
        if exit_st is not None:
            self._check_normal_exit(exit_st, emit)
        raise_st = states.in_states.get(cfg.raise_exit)
        if raise_st is not None:
            self._check_raise_exit(raise_st, emit)
        return findings

    def _check_instr(self, st: TState, instr, emit) -> None:
        if not isinstance(instr, ast.AST):
            return
        for call in _calls_within(instr):
            if isinstance(call.func, ast.Attribute):
                recv_key = _var_key(call.func.value)
                if recv_key is not None:
                    entries = st.vars.get(recv_key, frozenset())
                    kinds = {k for (k, _s, _l) in entries}
                    kind = next(iter(kinds)) if len(kinds) == 1 else None
                    if (
                        kind is not None
                        and call.func.attr in USES.get(kind, set())
                        and _definitely(entries, kind)
                    ):
                        self._emit_use(
                            emit, kind, recv_key, call.func.attr,
                            call.lineno, call.col_offset, entries,
                        )
                        continue
            self._check_summary_use(st, call, emit)
        # Broadcast uses are ``.value`` reads, not method calls.
        for sub in ast.walk(instr):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr == "value"
                and isinstance(sub.ctx, ast.Load)
            ):
                key = _var_key(sub.value)
                if key is None:
                    continue
                entries = st.vars.get(key, frozenset())
                if _definitely(entries, "broadcast"):
                    emit(
                        "LIF003", sub.lineno, sub.col_offset,
                        f"'{key}'.value read after unpersist(); the broadcast "
                        "payload is released on every executor",
                        [(line, "unpersisted here") for line in _dead_sites(entries)],
                    )

    def _check_summary_use(self, st: TState, call: ast.Call, emit) -> None:
        resolved = self.cache.resolve(self.analysis, self.scope, call)
        if resolved is None:
            return
        mod, node = resolved
        summary = self.cache.summary(mod, node)
        offset = _self_offset(node, call)
        callee = getattr(node, "name", "<callee>")
        for name, arg in _tracked_args(call, resolved, offset):
            if name is None or arg is None:
                continue
            entries = st.vars.get(arg, frozenset())
            kinds = {k for (k, _s, _l) in entries}
            kind = next(iter(kinds)) if len(kinds) == 1 else None
            if kind is None or not _definitely(entries, kind):
                continue
            used = (summary.may.get(name, frozenset())) & USES.get(kind, set())
            if used:
                method = sorted(used)[0]
                self._emit_use(
                    emit, kind, arg, method, call.lineno, call.col_offset,
                    entries, via=callee,
                )

    def _emit_use(self, emit, kind: str, var: str, method: str,
                  line: int, col: int, entries: frozenset,
                  via: str | None = None) -> None:
        verb = DEAD_VERB[kind]
        related = [(site, f"{verb} here") for site in _dead_sites(entries)]
        where = f"helper '{via}' calls .{method}() on it" if via else \
            f".{method}() called on it"
        noun = {
            "context": "a definitely-stopped SparkContext",
            "eventlog": "a closed EventLog",
            "rdd": "an unpersisted RDD",
            "broadcast": "an unpersisted Broadcast",
        }[kind]
        emit(
            USE_RULE[kind], line, col,
            f"'{var}' is {noun} on every path here, but {where}",
            related,
        )

    def _check_normal_exit(self, st: TState, emit) -> None:
        for key, entries in sorted(st.vars.items()):
            if "." in key or key in st.escaped:
                continue
            persisted = [(k, s, line) for (k, s, line) in entries
                         if k == "rdd" and s == "persisted"]
            for _k, _s, line in sorted(set(persisted)):
                emit(
                    "RES001", line, 0,
                    f"'{key}' is persisted/cached but some exit path leaves "
                    "it resident with no unpersist()",
                    [(line, "persisted here")],
                )

    def _check_raise_exit(self, st: TState, emit) -> None:
        for key, entries in sorted(st.vars.items()):
            if "." in key or key in st.escaped:
                continue
            for k, s, line in sorted(set(entries)):
                if k == "lock" and s == "held":
                    emit(
                        "RES002", line, 0,
                        f"'{key}' is acquired but an exception path escapes "
                        "without release(); use try/finally or with",
                        [(line, "acquired here")],
                    )
                elif k == "context" and s == "open":
                    emit(
                        "RES002", line, 0,
                        f"'{key}' (SparkContext) is left running on an "
                        "exception path; stop it in try/finally or use with",
                        [(line, "created here")],
                    )


# -- project-level driver -----------------------------------------------------

class _FlowCache:
    """Per-project cache of CFGs, callee summaries, and findings."""

    def __init__(self, project):
        self.project = project
        self._cfgs: dict[int, CFG] = {}
        self._summaries: dict[int, Summary] = {}
        self._in_progress: set[int] = set()
        self._node_owner: dict[int, tuple] = {}
        self.findings: list[Finding] | None = None
        for name, analysis in project.modules.items():
            for node in analysis._functions_by_scope:
                self._node_owner[id(node)] = (name, analysis)

    def cfg(self, func_node: ast.AST) -> CFG:
        key = id(func_node)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(func_node)
        return self._cfgs[key]

    def resolve(self, analysis: ModuleAnalysis, scope: Scope, call: ast.Call):
        hit = self.project.resolve_call(analysis, scope, call)
        if hit is None:
            return None
        mod, node = hit
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        return (mod, node)

    def summary(self, module: str, func_node: ast.AST) -> Summary:
        key = id(func_node)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:      # recursion: assume no effect
            return Summary()
        self._in_progress.add(key)
        try:
            summary = self._compute_summary(module, func_node)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def _compute_summary(self, module: str, func_node: ast.AST) -> Summary:
        analysis = self.project.modules.get(module)
        if analysis is None:
            return Summary()
        args = getattr(func_node, "args", None)
        if args is None:
            return Summary()
        params = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        if not params:
            return Summary()
        checker = _FunctionChecker(self, analysis, func_node)
        cfg = self.cfg(func_node)
        sa = _SummaryAnalysis(checker, params)
        states = solve(cfg, sa)
        exit_state = states.in_states.get(cfg.exit)
        must = {}
        if isinstance(exit_state, dict):
            must = {p: ms - {"__escape__", "__with_exit__"}
                    for p, ms in exit_state.items()}
        may: dict[str, set] = {p: set() for p in params}
        escapes: set[str] = set()
        for bid, st in states.out_states.items():
            if not isinstance(st, dict):
                continue
            for p, ms in st.items():
                may[p] |= ms
        for p in params:
            if "__escape__" in may[p]:
                escapes.add(p)
            may[p] -= {"__escape__", "__with_exit__"}
        return Summary(
            must={p: frozenset(ms) for p, ms in must.items()},
            may={p: frozenset(ms) for p, ms in may.items()},
            escapes=frozenset(escapes),
        )

    # -- stats ---------------------------------------------------------------
    def cfg_stats(self) -> dict:
        functions = len(self._cfgs)
        blocks = sum(len(c.blocks) for c in self._cfgs.values())
        edges = sum(c.num_edges for c in self._cfgs.values())
        exc_edges = sum(c.num_exc_edges for c in self._cfgs.values())
        return {
            "functions": functions,
            "blocks": blocks,
            "edges": edges,
            "exc_edges": exc_edges,
        }


def _flow_cache(project) -> _FlowCache:
    cache = getattr(project, "_flow_cache", None)
    if cache is None:
        cache = _FlowCache(project)
        project._flow_cache = cache
    return cache


def _compute_all(project) -> list[Finding]:
    cache = _flow_cache(project)
    if cache.findings is not None:
        return cache.findings
    findings: list[Finding] = []
    for _name, analysis in sorted(project.modules.items()):
        for node in analysis._functions_by_scope:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            checker = _FunctionChecker(cache, analysis, node)
            findings.extend(checker.check())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    cache.findings = findings
    return findings


def check_typestate(project, rules: tuple[str, ...] = TYPESTATE_RULES) -> list[Finding]:
    """Run the flow-sensitive lifecycle rules; filter to ``rules``."""
    return [f for f in _compute_all(project) if f.rule in rules]


def flow_stats(project) -> dict:
    """CFG size statistics for ``repro lint --stats`` (runs the analysis
    first so every reachable function's CFG is counted)."""
    _compute_all(project)
    return _flow_cache(project).cfg_stats()


# -- shared helpers -----------------------------------------------------------

def _calls_within(instr: ast.AST) -> list[ast.Call]:
    """Calls inside one instruction, excluding nested function bodies."""
    out: list[ast.Call] = []
    stack = [instr]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    out.reverse()
    return out


def _escaping_names(instr: ast.AST) -> set[str]:
    """Names escaping via return/yield/attribute-store in one instruction."""
    values: list[ast.AST] = []
    if isinstance(instr, ast.Return) and instr.value is not None:
        values.append(instr.value)
    for sub in ast.walk(instr):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
            values.append(sub.value)
    if isinstance(instr, ast.Assign) and any(
        isinstance(t, (ast.Attribute, ast.Subscript)) for t in instr.targets
    ):
        values.append(instr.value)
    names: set[str] = set()
    for value in values:
        names |= _value_names(value)
    return names


def _value_names(expr: ast.AST) -> set[str]:
    """Names the caller can obtain from ``expr`` as a *value* — not
    names merely consumed by it (``r.count()`` does not escape ``r``;
    ``r``, ``(r, x)``, ``a if c else r`` all do)."""
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        out: set[str] = set()
        for elt in expr.elts:
            out |= _value_names(elt)
        return out
    if isinstance(expr, ast.Dict):
        out = set()
        for v in expr.values:
            out |= _value_names(v)
        return out
    if isinstance(expr, ast.IfExp):
        return _value_names(expr.body) | _value_names(expr.orelse)
    if isinstance(expr, ast.BoolOp):
        out = set()
        for v in expr.values:
            out |= _value_names(v)
        return out
    if isinstance(expr, (ast.Starred, ast.Await)):
        return _value_names(expr.value)
    if isinstance(expr, ast.NamedExpr):
        return _value_names(expr.value)
    return set()


def _self_offset(func_node: ast.AST, call: ast.Call) -> int:
    """1 when the callee's first parameter is bound by the receiver."""
    args = getattr(func_node, "args", None)
    if args is None:
        return 0
    params = list(args.posonlyargs) + list(args.args)
    if params and params[0].arg in ("self", "cls") and isinstance(
        call.func, ast.Attribute
    ):
        return 1
    return 0


def _tracked_args(call: ast.Call, resolved, offset: int):
    """Yield (param_name | None, arg_var_key | None) for each argument
    that is a bare name (the only things the typestate tracks)."""
    params: list[str] = []
    if resolved is not None:
        node = resolved[1]
        args = getattr(node, "args", None)
        if args is not None:
            params = [a.arg for a in list(args.posonlyargs) + list(args.args)]
            params = params[offset:]
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        key = _var_key(arg) if isinstance(arg, (ast.Name, ast.Attribute)) else None
        if key is None:
            continue
        name = params[i] if i < len(params) else None
        yield (name, key)
    for kw in call.keywords:
        if kw.arg is None:
            continue
        key = _var_key(kw.value) if isinstance(
            kw.value, (ast.Name, ast.Attribute)
        ) else None
        if key is None:
            continue
        name = kw.arg if kw.arg in params else None
        yield (name, key)

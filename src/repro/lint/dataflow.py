"""Generic forward dataflow fixpoint solver over `repro.lint.cfg` graphs.

An analysis supplies a join-semilattice and a transfer function; the
solver iterates a worklist until block in-states stabilise.  The split
between normal and exceptional out-states mirrors the CFG's two edge
kinds: the state carried along an exceptional edge is the join of the
analysis's `exc_state` contributions of the block's may-raise
instructions — typically the state *before* the raising instruction
(the exception interrupts it), letting analyses model "the release
happened" vs "the acquire never did" per instruction.

Termination: the solver requires a finite-height lattice (joins must
stop producing new values).  `MAX_ITERATIONS` is a hard backstop for
buggy analyses; hitting it raises `FixpointDiverged` rather than
silently under-approximating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

from .cfg import CFG, Block, Instr, may_raise

S = TypeVar("S")

#: Hard ceiling on worklist pops — generous for any real function
#: (a function with B blocks and lattice height H needs ~B*H pops).
MAX_ITERATIONS = 100_000


class FixpointDiverged(RuntimeError):
    """The fixpoint iteration failed to stabilise (non-monotone transfer
    or an infinite-height lattice)."""


class ForwardAnalysis(Generic[S]):
    """Interface a forward dataflow analysis implements."""

    def initial_state(self) -> S:
        """State at the function entry."""
        raise NotImplementedError

    def bottom(self) -> S:
        """Identity of `join` (the state of an unreached block)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states (must be commutative,
        associative, idempotent)."""
        raise NotImplementedError

    def transfer(self, state: S, instr: Instr) -> S:
        """State after executing one instruction normally."""
        raise NotImplementedError

    def exc_state(self, state: S, instr: Instr) -> S:
        """State carried along the exceptional edge when ``instr``
        raises, given the state *before* it.  Default: that state."""
        return state


@dataclass
class BlockStates(Generic[S]):
    """Solver result: per-block fixpoint states.

    ``in_states`` holds the join over incoming edges; ``out_states`` /
    ``exc_states`` the corresponding outgoing states.  Unreachable
    blocks are absent from all three maps.
    """

    cfg: CFG
    in_states: dict[int, S] = field(default_factory=dict)
    out_states: dict[int, S] = field(default_factory=dict)
    exc_states: dict[int, S] = field(default_factory=dict)

    def reached(self, bid: int) -> bool:
        return bid in self.in_states


def _flow_block(
    analysis: ForwardAnalysis[S], block: Block, state: S
) -> tuple[S, S]:
    """(normal out-state, exceptional out-state) of one block."""
    exc = analysis.bottom()
    for instr in block.instrs:
        if may_raise(instr):
            exc = analysis.join(exc, analysis.exc_state(state, instr))
        state = analysis.transfer(state, instr)
    return state, exc


def solve(cfg: CFG, analysis: ForwardAnalysis[S]) -> BlockStates[S]:
    """Run the analysis to fixpoint; returns the stabilised states."""
    states = BlockStates(cfg=cfg)
    states.in_states[cfg.entry] = analysis.initial_state()
    worklist: list[int] = [cfg.entry]
    queued: set[int] = {cfg.entry}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise FixpointDiverged(
                f"dataflow fixpoint exceeded {MAX_ITERATIONS} iterations "
                f"({len(cfg.blocks)} blocks)"
            )
        bid = worklist.pop()
        queued.discard(bid)
        block = cfg.blocks[bid]
        out, exc = _flow_block(analysis, block, states.in_states[bid])
        states.out_states[bid] = out
        states.exc_states[bid] = exc
        for succ, carried in (
            [(s, out) for s in block.succs] + [(s, exc) for s in block.exc_succs]
        ):
            old = states.in_states.get(succ)
            new = carried if old is None else analysis.join(old, carried)
            if old is None or new != old:
                states.in_states[succ] = new
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)
    return states


def exit_state(states: BlockStates[S], analysis: ForwardAnalysis[S]) -> S | None:
    """In-state of the normal exit block, or None when unreachable."""
    return states.in_states.get(states.cfg.exit)


def raise_exit_state(
    states: BlockStates[S], analysis: ForwardAnalysis[S]
) -> S | None:
    """In-state of the raise exit block, or None when no exception path
    escapes the function."""
    return states.in_states.get(states.cfg.raise_exit)


class SetUnionAnalysis(ForwardAnalysis[frozenset]):
    """Tiny concrete analysis for tests and as a pattern to copy: the
    forward may-analysis whose state is a set under union (used e.g.
    for "names assigned so far")."""

    def initial_state(self) -> frozenset:
        return frozenset()

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, state: frozenset, instr: Instr) -> frozenset:
        import ast

        if isinstance(instr, ast.Assign):
            names = {
                t.id for t in instr.targets if isinstance(t, ast.Name)
            }
            return state | frozenset(names)
        return state

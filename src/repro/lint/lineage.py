"""Static RDD-lineage dataflow rules: the whole-program half of §8.

The paper's headline property — zero shuffles, driver-only merge via an
accumulator (Algorithms 3-4) — used to be enforced by a hand-maintained
path allowlist.  This module replaces that with a *proof obligation*
discharged from the program itself:

- ``SHF001`` shuffle-free — starting from the paper-pipeline entry
  points (the `SparkDBSCAN`/`SpatialSparkDBSCAN` frontends plus every
  stage class of the manifest's shuffle-free plans), close over the
  interprocedural call graph (`repro.lint.callgraph.Project`) and flag
  any wide-dependency RDD API in reachable code, and any import of the
  shuffle subsystem in a module hosting reachable code.  The engine
  package legitimately *contains* shuffle machinery (the naive baseline
  uses it) — what the proof shows is that no path from the paper
  pipeline ever reaches it, the same way a PySpark job proves nothing
  about pyspark's own internals.

Three task-dataflow rules ride on the same machinery, scanning every
function transitively reachable from a task closure (across modules,
engine substrate excluded — the engine polices itself at runtime via
``--sanitize``):

- ``ACC001`` accumulator-read-in-task — reading ``acc.value`` in task
  code races the driver-side merge; the paper's accumulator is
  write-only on executors (``add``), readable only after the action.
- ``BRD001`` broadcast-mutation-in-task — mutating ``b.value`` in task
  code diverges per executor and silently disappears on the processes
  backend; broadcasts are immutable reference data.
- ``ACT001`` action-in-task — invoking an RDD action inside a task
  closure would nest a job inside a task; the lineage handle is driver
  state and the call deadlocks or diverges under retries.

Every rule fires only on *positively identified* hazards (typed
receivers, resolved reachability); an unknown type stays silent.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterable

from .findings import Finding
from .plans import shuffle_free_stage_classes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .callgraph import Project

# Paper-pipeline frontends; the stage classes of the shuffle-free plans
# are added from the STAGE_MANIFEST at check time.
BASE_ENTRY_CLASSES = frozenset({
    "SparkDBSCAN",
    "SpatialSparkDBSCAN",
    "LocalExpand",
    "CollectPartials",
})

# RDD APIs introducing a wide dependency (a shuffle stage).  The
# distinctive names fire on any receiver; ``join`` only on a positively
# RDD-typed one (os.path.join, str.join are everywhere).  CamelCase
# aliases cover code written against the PySpark spelling.
WIDE_DEP_DISTINCTIVE = frozenset({
    "group_by_key", "reduce_by_key", "partition_by", "sort_by",
    "distinct", "cogroup", "left_outer_join", "subtract_by_key",
    "count_by_key",
    "groupByKey", "reduceByKey", "partitionBy", "sortBy",
    "leftOuterJoin", "subtractByKey", "countByKey",
})
WIDE_DEP_GENERIC = frozenset({"join"})

# RDD APIs that launch a job (actions); fatal inside task code.
RDD_ACTIONS = frozenset({
    "collect", "count", "take", "first", "top", "take_ordered",
    "take_sample", "reduce", "fold", "aggregate", "foreach",
    "foreach_partition", "foreach_partition_with_index",
    "count_by_value", "save_as_text_file",
})

# Methods that mutate their receiver in place (BRD001).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})


def entry_classes(project: "Project") -> set[str]:
    """SHF001 entry points: frontends + shuffle-free plan stages."""
    return set(BASE_ENTRY_CLASSES) | shuffle_free_stage_classes(project)


def _each_reachable(
    project: "Project", reached: dict[str, set[ast.AST]]
) -> Iterable[tuple[str, "ast.AST", object, object]]:
    """(module, node, analysis, scope) per reachable application
    function, in a deterministic order."""
    from .callgraph import is_substrate

    for module in sorted(reached):
        if is_substrate(module):
            continue
        analysis = project.modules[module]
        for node in sorted(reached[module], key=lambda n: (n.lineno, n.col_offset)):
            yield module, node, analysis, analysis.scope_of(node)


def _walk_body(node: ast.AST) -> Iterable[ast.AST]:
    """Every AST node lexically inside a function, the function's own
    header excluded.  Nested defs are *included*: code written inside a
    reachable function runs (or is shipped) with it, and findings are
    deduplicated by location across overlapping walks."""
    roots = [node.body] if isinstance(node, ast.Lambda) else list(
        getattr(node, "body", [])
    )
    for root in roots:
        yield from ast.walk(root)


class _Dedup:
    """Location-keyed dedup: overlapping reachability walks (a nested
    def is both inside its parent and a graph node) report once."""

    def __init__(self) -> None:
        self._seen: set[tuple[str, str, int, int]] = set()

    def first(self, rule: str, path: str, line: int, col: int) -> bool:
        key = (rule, path, line, col)
        if key in self._seen:
            return False
        self._seen.add(key)
        return True


def check_shuffle_free(project: "Project") -> list[Finding]:
    """SHF001: prove the paper pipeline shuffle-free from the graph."""
    from .callgraph import is_substrate

    entries = entry_classes(project)
    reached = project.reachable_from(entries)
    out: list[Finding] = []
    dedup = _Dedup()

    # (a) wide-dependency APIs in entry-reachable code.
    for _module, node, analysis, scope in _each_reachable(project, reached):
        for sub in _walk_body(node):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            attr = sub.func.attr
            wide = attr in WIDE_DEP_DISTINCTIVE or (
                attr in WIDE_DEP_GENERIC and analysis.receiver_is_rdd(sub, scope)
            )
            if not wide:
                continue
            if not dedup.first("SHF001", analysis.path, sub.lineno, sub.col_offset):
                continue
            out.append(
                Finding(
                    rule="SHF001",
                    path=analysis.path,
                    line=sub.lineno,
                    col=sub.col_offset,
                    message=(
                        f".{attr}() introduces a wide dependency (a shuffle "
                        "stage) and is reachable from the paper pipeline, "
                        "which is shuffle-free by construction "
                        "(Algorithms 3-4)"
                    ),
                    symbol=scope.name,
                )
            )

    # (b) shuffle-subsystem imports in any module hosting reachable
    # code or defining an entry-point class.
    hosting = (set(reached) | project.entry_modules(entries))
    for module in sorted(hosting):
        if is_substrate(module):
            continue
        analysis = project.modules[module]
        for node in ast.walk(analysis.tree):
            names: list[str] = []
            if isinstance(node, ast.ImportFrom):
                names = [
                    f"{node.module}.{alias.name}" if node.module else alias.name
                    for alias in node.names
                ]
            elif isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            for dotted in names:
                if "shuffle" not in dotted.split("."):
                    continue
                if not dedup.first(
                    "SHF001", analysis.path, node.lineno, node.col_offset
                ):
                    continue
                out.append(
                    Finding(
                        rule="SHF001",
                        path=analysis.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"import of {dotted!r} in a module hosting "
                            "paper-pipeline code: the pipeline is "
                            "shuffle-free by construction (Algorithms 3-4); "
                            "no shuffle code may enter it"
                        ),
                    )
                )
                break
    return out


def _broadcast_value_root(
    expr: ast.AST, analysis, scope
) -> ast.Name | None:
    """The Broadcast-typed Name under a ``b.value[...]...`` chain."""
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            if node.attr == "value" and isinstance(node.value, ast.Name):
                if analysis.expr_type(node.value, scope) == "Broadcast":
                    return node.value
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return None


def _task_dataflow(
    project: "Project",
    visit: Callable[[object, object, ast.AST, list[Finding], _Dedup], None],
) -> list[Finding]:
    """Run a per-node visitor over all task-reachable application code."""
    reached = project.task_reachable_by_module()
    out: list[Finding] = []
    dedup = _Dedup()
    for _module, node, analysis, scope in _each_reachable(project, reached):
        for sub in _walk_body(node):
            visit(analysis, scope, sub, out, dedup)
    return out


def check_accumulator_reads(project: "Project") -> list[Finding]:
    """ACC001: ``acc.value`` reads inside task-reachable code."""

    def visit(analysis, scope, sub, out, dedup) -> None:
        if not (
            isinstance(sub, ast.Attribute)
            and sub.attr == "value"
            and isinstance(sub.ctx, ast.Load)
            and isinstance(sub.value, ast.Name)
        ):
            return
        if analysis.expr_type(sub.value, scope) != "Accumulator":
            return
        if not dedup.first("ACC001", analysis.path, sub.lineno, sub.col_offset):
            return
        out.append(
            Finding(
                rule="ACC001",
                path=analysis.path,
                line=sub.lineno,
                col=sub.col_offset,
                message=(
                    f"reads {sub.value.id!r}.value in task code: accumulators "
                    "are write-only on executors (add) and merged on the "
                    "driver; the value here is a partial, attempt-dependent "
                    "snapshot"
                ),
                symbol=scope.name,
            )
        )

    return _task_dataflow(project, visit)


def check_broadcast_mutations(project: "Project") -> list[Finding]:
    """BRD001: mutation of a broadcast value inside task code."""

    def emit(analysis, scope, name_node, line, col, how, out, dedup) -> None:
        if not dedup.first("BRD001", analysis.path, line, col):
            return
        out.append(
            Finding(
                rule="BRD001",
                path=analysis.path,
                line=line,
                col=col,
                message=(
                    f"{how} {name_node.id!r}.value in task code: broadcasts "
                    "are immutable reference data; executor-local writes "
                    "diverge per attempt and never reach the driver"
                ),
                symbol=scope.name,
            )
        )

    def visit(analysis, scope, sub, out, dedup) -> None:
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign)
                else [sub.target] if isinstance(sub, ast.AugAssign)
                else sub.targets
            )
            how = "deletes from" if isinstance(sub, ast.Delete) else "assigns into"
            for target in targets:
                root = _broadcast_value_root(target, analysis, scope)
                if root is not None:
                    emit(analysis, scope, root, sub.lineno, sub.col_offset,
                         how, out, dedup)
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr not in _MUTATOR_METHODS:
                return
            root = _broadcast_value_root(sub.func.value, analysis, scope)
            if root is not None:
                emit(analysis, scope, root, sub.lineno, sub.col_offset,
                     f"calls .{sub.func.attr}() on", out, dedup)

    return _task_dataflow(project, visit)


def check_rdd_actions(project: "Project") -> list[Finding]:
    """ACT001: RDD actions invoked inside task-reachable code."""

    def visit(analysis, scope, sub, out, dedup) -> None:
        if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
            return
        if sub.func.attr not in RDD_ACTIONS:
            return
        if not analysis.receiver_is_rdd(sub, scope):
            return
        if not dedup.first("ACT001", analysis.path, sub.lineno, sub.col_offset):
            return
        out.append(
            Finding(
                rule="ACT001",
                path=analysis.path,
                line=sub.lineno,
                col=sub.col_offset,
                message=(
                    f".{sub.func.attr}() is an RDD action invoked inside "
                    "task code: it would nest a job in a task; the lineage "
                    "handle is driver state (collect on the driver, ship "
                    "data into the closure instead)"
                ),
                symbol=scope.name,
            )
        )

    return _task_dataflow(project, visit)

"""Driving the linter: file discovery, parsing, pragmas, reports.

`repro lint [paths]` funnels through `run_lint`, which scans ``.py``
files, runs the rule catalogue (`repro.lint.rules`) over each module's
closure analysis, drops findings covered by inline allow pragmas, and
diffs the rest against the committed baseline.

Allowlist pragma — on the finding's line or the line directly above::

    t0 = time.time()  # lint: allow[DET001] driver-side wall clock

Multiple rules: ``# lint: allow[DET001,CAP001]``.  Pragmas are the
intended channel for *intentional* exceptions; whole-rule suppression
is deliberately not offered.
"""

from __future__ import annotations

import ast
import os
import re

from .baseline import load_baseline, new_findings
from .closures import ModuleAnalysis
from .findings import Finding, LintReport
from .rules import run_rules

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_,\s]+)\]")


class LintError(ValueError):
    """A path cannot be scanned (missing file, unreadable, bad syntax)."""


def discover_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in ("__pycache__",) and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return out


def _allowed_rules(source_lines: list[str], line: int) -> set[str]:
    """Rules allow-listed for a 1-based line (same line or the one above)."""
    out: set[str] = set()
    for lineno in (line, line - 1):
        if 1 <= lineno <= len(source_lines):
            m = _PRAGMA_RE.search(source_lines[lineno - 1])
            if m:
                out.update(r.strip() for r in m.group(1).split(","))
    return out


def lint_file(path: str) -> list[Finding]:
    """Lint one file; pragma-allowed findings are dropped."""
    try:
        with open(path, encoding="utf-8") as f:
            source = f.read()
    except OSError as exc:
        raise LintError(f"cannot read {path!r}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"syntax error in {path!r}: {exc.msg} (line {exc.lineno})") from exc
    norm = path.replace(os.sep, "/")
    analysis = ModuleAnalysis(norm, source, tree)
    findings = run_rules(analysis)
    lines = source.splitlines()
    kept = [f for f in findings if f.rule not in _allowed_rules(lines, f.line)]
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept


def run_lint(paths: list[str], baseline_path: str | None = None) -> LintReport:
    """Lint all paths; diff against a baseline when one is given."""
    files = discover_files(paths)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    report = LintReport(findings=findings, files_scanned=len(files))
    if baseline_path is not None and os.path.exists(baseline_path):
        baseline = load_baseline(baseline_path)
        report.baseline_path = baseline_path
        report.new = new_findings(findings, baseline)
    else:
        report.new = list(findings)
    return report

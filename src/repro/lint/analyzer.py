"""Driving the linter: file discovery, parsing, pragmas, reports.

`repro lint [paths]` funnels through `run_lint`, which parses every
``.py`` file, stitches the per-module analyses into one whole-program
`repro.lint.callgraph.Project`, runs the per-module rule catalogue
(with the project-widened task-reachable sets) plus the whole-program
rules (`repro.lint.rules.PROJECT_RULES`), drops findings covered by
inline allow pragmas, and diffs the rest against the committed
baseline.

Allowlist pragma — on the finding's line or the line directly above::

    t0 = time.time()  # lint: allow[DET001] driver-side wall clock

For *module-level* statements the pragma may sit on any line of the
statement (or directly above it), so multi-line module-level constructs
— a parenthesized RDD chain, a long import list — can carry the pragma
on their trailing line::

    EDGES = (sc.parallelize(pairs)
             .group_by_key())  # lint: allow[SHF001] offline tooling

Multiple rules: ``# lint: allow[DET001,CAP001]``.  Pragmas are the
intended channel for *intentional* exceptions; whole-rule suppression
is deliberately not offered.
"""

from __future__ import annotations

import ast
import os
import re

from .baseline import load_baseline, new_findings
from .callgraph import Project, module_name_for
from .closures import ModuleAnalysis
from .findings import Finding, LintReport
from .rules import run_project_rules, run_rules
from .sizeclass import sizeclass_stats
from .typestate import flow_stats

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_,\s]+)\]")


class LintError(ValueError):
    """A path cannot be scanned (missing file, unreadable, bad syntax)."""


def discover_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in ("__pycache__",) and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return out


def build_project(files: list[str]) -> Project:
    """Parse every file and assemble the whole-program project."""
    units: list[tuple[str, ModuleAnalysis]] = []
    taken: set[str] = set()
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            raise LintError(f"cannot read {path!r}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(
                f"syntax error in {path!r}: {exc.msg} (line {exc.lineno})"
            ) from exc
        norm = path.replace(os.sep, "/")
        name = module_name_for(path)
        # Same-named modules from disjoint scan roots (bare fixture
        # files, conftest.py) must not shadow each other in the project.
        n = 0
        while name in taken:
            n += 1
            name = f"{module_name_for(path)}~{n}"
        taken.add(name)
        units.append((name, ModuleAnalysis(norm, source, tree)))
    return Project(units)


# Statement kinds whose whole span may carry a pragma.  Compound
# statements (class/def/if/for/...) are excluded on purpose: a pragma
# buried in a class body must not suppress findings across the class.
_SIMPLE_STMTS = (
    ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr,
    ast.Import, ast.ImportFrom, ast.Assert, ast.Delete,
)


def _module_spans(analysis: ModuleAnalysis) -> list[tuple[int, int]]:
    """(lineno, end_lineno) of every *simple* module-level statement."""
    return [
        (stmt.lineno, getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno)
        for stmt in analysis.tree.body
        if isinstance(stmt, _SIMPLE_STMTS)
    ]


def _allowed_rules(
    source_lines: list[str], line: int, spans: list[tuple[int, int]]
) -> set[str]:
    """Rules allow-listed for a 1-based line: the line itself, the line
    above, and — when the line falls inside a module-level statement —
    any line of that statement (or the line above it)."""
    candidates = {line, line - 1}
    for start, end in spans:
        if start <= line <= end:
            candidates.update(range(start - 1, end + 1))
            break
    out: set[str] = set()
    for lineno in candidates:
        if 1 <= lineno <= len(source_lines):
            m = _PRAGMA_RE.search(source_lines[lineno - 1])
            if m:
                out.update(r.strip() for r in m.group(1).split(","))
    return out


def _collect_findings(project: Project) -> list[Finding]:
    """Module + project rules, pragma-filtered, in (path, line) order."""
    # Widen every module's task-reachable set with the cross-module
    # closure before the per-module rules run, so DET001 and the
    # reachable-helper capture checks fire through helper modules.
    task_reach = project.task_reachable_by_module()
    by_path: dict[str, ModuleAnalysis] = {}
    findings: list[Finding] = []
    for name, analysis in project.modules.items():
        analysis.task_reachable |= task_reach.get(name, set())
        by_path[analysis.path] = analysis
    for analysis in project.modules.values():
        findings.extend(run_rules(analysis))
    findings.extend(run_project_rules(project))
    kept: list[Finding] = []
    span_cache: dict[str, tuple[list[str], list[tuple[int, int]]]] = {}
    for f in findings:
        analysis = by_path.get(f.path)
        if analysis is None:
            kept.append(f)
            continue
        if f.path not in span_cache:
            span_cache[f.path] = (
                analysis.source.splitlines(),
                _module_spans(analysis),
            )
        lines, spans = span_cache[f.path]
        if f.rule not in _allowed_rules(lines, f.line, spans):
            kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_file(path: str) -> list[Finding]:
    """Lint one file as a single-module project; pragma-allowed
    findings are dropped."""
    if not os.path.isfile(path):
        raise LintError(f"no such file or directory: {path!r}")
    return _collect_findings(build_project([path]))


def run_lint(
    paths: list[str],
    baseline_path: str | None = None,
    collect_stats: bool = False,
) -> LintReport:
    """Lint all paths; diff against a baseline when one is given."""
    files = discover_files(paths)
    project = build_project(files)
    findings = _collect_findings(project)
    report = LintReport(findings=findings, files_scanned=len(files))
    if collect_stats:
        nodes, edges, sccs = project.graph_stats()
        rule_counts: dict[str, int] = {}
        for f in findings:
            rule_counts[f.rule] = rule_counts.get(f.rule, 0) + 1
        report.stats = {
            "rules": dict(sorted(rule_counts.items())),
            "graph": {"nodes": nodes, "edges": edges, "sccs": sccs},
            "modules": len(project.modules),
            "cfg": flow_stats(project),
            "sizes": sizeclass_stats(project),
        }
    if baseline_path is not None and os.path.exists(baseline_path):
        baseline = load_baseline(baseline_path)
        report.baseline_path = baseline_path
        report.new = new_findings(findings, baseline)
    else:
        report.new = list(findings)
    return report

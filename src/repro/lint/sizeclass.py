"""Size-class abstract interpretation: prove the driver stays sub-O(points).

The paper's Fig. 6 cliff is the driver merge, and the edge-based merge
path exists precisely so the driver only ever holds O(edges + partials)
state.  This module turns that convention into a static proof over the
lattice of asymptotic size classes

    O(1) ⊑ O(cells) ⊑ O(partials) ⊑ O(edges) ⊑ O(points) ⊑ ⊤

Every driver-side value is abstracted as a `SizeVal` with two class
components — ``storage`` (the bytes the value itself pins) and
``count`` (its element/trip-count magnitude: ``len(partials)`` is an
O(1) scalar whose *count* is O(partials)) — plus provenance (taint
line), a freshness bit (allocated here vs. aliased), symbolic parameter
dependencies for interprocedural summaries, and a lazy-handle tag for
RDD/broadcast objects whose driver cost is not their logical size.

Transfer functions cover numpy constructors and element-preserving
ops, slicing/fancy indexing, concatenation, comprehensions (whose
generators the CFG lowers to real loop blocks, so SCL002 sees their
trip counts), and the engine APIs: ``sc.parallelize(x)`` wraps ``x``
lazily, ``rdd.collect()``/``collect_as_map()`` materialize the RDD's
class on the driver, ``sc.broadcast(x)`` inherits ``x``'s class.
Sources are the repo's naming contract (``points``/``labels`` are
O(points); ``digests`` are O(partials)-many O(edges) records; …) plus
the pure-literal ``SIZE_MANIFEST`` next to ``STAGE_MANIFEST`` in
`repro.pipeline.plans`, which declares every stage's driver-resident
input/output classes.  Summaries propagate classes interprocedurally
over the call graph, memoized and cycle-guarded like typestate's.

The analysis is *may* in the repo's house style: a value with no
positively identified class never fires.  Four rules:

- ``SCL001`` driver-materializes-points — an O(points)-classed value
  is materialized (fresh allocation) or retained (stored into longer-
  lived ``obj.attr``/``obj[k]`` storage) on the driver outside the
  sanctioned stages (load/reorder/index build/label application);
- ``SCL002`` driver-loop-over-points — a driver-side loop (``for``,
  or a comprehension generator) whose trip count is O(points): the
  exact per-point driver iteration `merge_edges` was built to kill;
- ``SCL003`` broadcast-of-points — a dataset-sized broadcast reachable
  from a ``cell``/``*_edges`` plan, the static twin of the runtime
  broadcast-bytes assertion;
- ``SCL004`` collect-undigested — ``collect()`` of an O(points) RDD
  while the size manifest offers an O(edges)/O(partials) digest
  reduction: collect the digest, not the dataset.

Scope mirrors the lineage rules: functions reachable from the
shuffle-free plans' stage classes, minus task-submitted closures
(executor code is *supposed* to touch points) and the engine
substrate.  Findings carry related "tainted here" locations and the
usual line-free messages so baselines survive drift; the known
central binning/balancing in `repro.dbscan.cells` is baselined with
scoped pragmas referencing ROADMAP item 1, not silently skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from .callgraph import is_substrate
from .cfg import CFG, ExceptBind, ForBind, WithEnter, build_cfg
from .closures import RDD_CHAIN_METHODS, RDD_FACTORY_METHODS, _target_names
from .dataflow import ForwardAnalysis, solve
from .findings import Finding
from .plans import (
    SIZE_CLASSES,
    manifests,
    shuffle_free_stage_classes,
    size_manifests,
)
from .typestate import _calls_within, _self_offset, _var_key

SIZECLASS_RULES = ("SCL001", "SCL002", "SCL003", "SCL004")

# -- the lattice ---------------------------------------------------------------

#: Ranks, smallest first; ``TOP`` is reserved for documentation — no
#: transfer function currently produces it (unknown is ``None``).
ONE, CELLS, PARTIALS, EDGES, POINTS, TOP = range(6)

RANK_OF_CLASS = {name: rank for rank, name in enumerate(SIZE_CLASSES)}
CLASS_OF_RANK = {rank: name for name, rank in RANK_OF_CLASS.items()}
CLASS_OF_RANK[TOP] = "⊤"


def _join_rank(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


@dataclass(frozen=True)
class SizeVal:
    """Abstract value: size classes plus provenance.

    ``storage`` is the class of bytes the value itself keeps resident;
    ``count`` is its element/iteration-count magnitude (``len(points)``
    stores O(1) but counts O(points)).  ``fresh`` marks values
    allocated by the *evaluated expression* (reading a name strips it);
    only fresh values are "materialized", only aliases are "retained".
    ``tag`` marks lazy engine handles ("rdd"/"broadcast") that are
    exempt from materialization events — they have rules of their own.
    ``deps`` names the parameters a symbolic summary value depends on;
    callers substitute their argument classes.  ``line`` is where the
    taint was introduced (the related "tainted here" location).
    """

    storage: int | None = None
    count: int | None = None
    fresh: bool = False
    tag: str | None = None
    line: int = 0
    deps: frozenset = frozenset()


def _join_vals(a: SizeVal | None, b: SizeVal | None) -> SizeVal | None:
    if a is None:
        return b
    if b is None:
        return a
    lines = [ln for ln in (a.line, b.line) if ln]
    return SizeVal(
        storage=_join_rank(a.storage, b.storage),
        count=_join_rank(a.count, b.count),
        fresh=a.fresh and b.fresh,
        tag=a.tag if a.tag == b.tag else None,
        line=min(lines) if lines else 0,
        deps=a.deps | b.deps,
    )


# -- sources: the repo's naming contract ---------------------------------------

#: (storage, count) classes by variable name.  Applies to bare names
#: with no local binding (module globals, closure captures) and to the
#: last segment of attribute chains (``state.points``, ``self.cells``).
#: This is the same naming-is-a-contract stance as the closure
#: analysis's ``sc`` heuristic; an explicit local assignment always
#: overrides it.
SIZE_BY_NAME = {
    "points": (POINTS, POINTS),
    "labels": (POINTS, POINTS),
    "perm": (POINTS, POINTS),
    "cell_of_point": (POINTS, POINTS),
    "partials": (POINTS, PARTIALS),   # m partial results over all points
    "edges": (EDGES, EDGES),
    "digests": (EDGES, PARTIALS),     # m digests, O(edges) bytes total
    "digest": (EDGES, PARTIALS),
    "summaries": (PARTIALS, PARTIALS),
    "gid_map": (PARTIALS, PARTIALS),
    "cells": (CELLS, CELLS),
    "counts": (CELLS, CELLS),
}

#: Count-only classes for *attribute* reads (``state.n``, ``grid.n``):
#: an O(1) scalar whose magnitude is the dataset size.  Deliberately
#: never applied to bare parameters — ``UnionFind(n)`` takes a
#: partial-universe count, ``state.n`` is the paper's n.
COUNT_BY_NAME = {
    "n": POINTS,
    "num_points": POINTS,
}

#: numpy callables whose result class is the join of their array
#: arguments: elementwise, reordering, masking, and concatenation.
#: ``bincount``/``lexsort`` are deliberately absent — their output is
#: sized by the value range, not the input length.
NUMPY_PRESERVE = {
    "abs",
    "argsort",
    "array",
    "asarray",
    "ascontiguousarray",
    "ceil",
    "clip",
    "concatenate",
    "copy",
    "cumsum",
    "flatnonzero",
    "floor",
    "hstack",
    "maximum",
    "minimum",
    "nonzero",
    "rint",
    "sort",
    "stack",
    "unique",
    "vstack",
    "where",
}

#: numpy allocators whose first argument is a shape (or a length).
NUMPY_SHAPE_ALLOC = {"zeros", "empty", "ones", "full"}

#: Array methods that preserve the receiver's class.
ARRAY_PRESERVE_METHODS = {"astype", "copy", "ravel", "flatten", "tolist"}

#: Builtins that rewrap an iterable without changing its class.
ITER_BUILTINS = {
    "list", "tuple", "set", "frozenset", "sorted", "reversed",
    "iter", "zip", "enumerate",
}

#: Engine actions that materialize an RDD on the driver.
COLLECT_METHODS = {"collect", "collect_as_map", "collectAsMap"}

#: Stage classes sanctioned to hold O(points) on the driver: loading,
#: spatial reorder, index build, and label application (ISSUE scope).
SANCTIONED_STAGES = frozenset({
    "LoadPoints",
    "SpatialReorder",
    "BuildIndex",
    "MergePartials",
    "ApplyGidMap",
    "RelabelFilter",
})

_MISSING = object()

_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _class_name(rank: int) -> str:
    return CLASS_OF_RANK.get(rank, "⊤")


def _preserved(val: SizeVal | None) -> SizeVal | None:
    """An element-preserving op's result: same classes, fresh storage.
    Symbolic deps-only values survive (the summary stays substitutable)."""
    if val is None:
        return None
    if val.storage is None and val.count is None and not val.deps:
        return None
    return replace(val, fresh=True, tag=None)


def _is_spark_context(analysis, scope, expr: ast.AST) -> bool:
    """SparkContext receivers: the closure analysis's type heuristic
    plus the same naming contract on attribute chains (``state.sc``)."""
    if analysis.expr_type(expr, scope) == "SparkContext":
        return True
    key = _var_key(expr)
    if key is None:
        return False
    leaf = key.rsplit(".", 1)[-1]
    return leaf == "sc" or leaf.endswith("_sc")


# -- interprocedural summaries -------------------------------------------------

@dataclass
class SizeSummary:
    """A callee's return-value class, possibly symbolic in its params."""

    ret: SizeVal | None = None


# -- the per-function pass -----------------------------------------------------

class _FunctionSizer:
    """Size-class pass over one function: expression evaluation, the
    transfer function, and the check walk.

    ``symbolic=True`` is summary mode: parameters are seeded as
    symbolic values (``deps={param}``) instead of from the name table,
    so the summary stays valid for every caller.  Attribute reads fall
    back to the concrete name table in both modes.
    """

    def __init__(self, cache: "_SizeCache", analysis, func_node,
                 symbolic: bool = False):
        self.cache = cache
        self.analysis = analysis
        self.func = func_node
        self.scope = analysis.scope_of(func_node)
        self.symbolic = symbolic
        self.seed = self._seed_params()

    # -- seeding ---------------------------------------------------------------

    def _params(self) -> list[str]:
        args = getattr(self.func, "args", None)
        if args is None:
            return []
        return [a.arg for a in list(args.posonlyargs) + list(args.args)]

    def _seed_params(self) -> dict:
        seed: dict = {}
        for p in self._params():
            if p in ("self", "cls"):
                continue
            if self.symbolic:
                seed[p] = SizeVal(deps=frozenset({p}))
            else:
                hit = SIZE_BY_NAME.get(p)
                if hit is not None:
                    seed[p] = SizeVal(
                        storage=hit[0], count=hit[1],
                        line=getattr(self.func, "lineno", 0),
                    )
        return seed

    def _table_val(self, key: str, line: int = 0) -> SizeVal | None:
        leaf = key.rsplit(".", 1)[-1]
        hit = SIZE_BY_NAME.get(leaf)
        if hit is not None:
            return SizeVal(storage=hit[0], count=hit[1], line=line)
        if "." in key:
            count = COUNT_BY_NAME.get(leaf)
            if count is not None:
                return SizeVal(storage=ONE, count=count, line=line)
        return None

    # -- expression evaluation -------------------------------------------------

    def eval(self, state: dict, expr: ast.AST) -> SizeVal | None:
        """Abstract value of ``expr`` under ``state`` (pure)."""
        if isinstance(expr, ast.Name) or isinstance(expr, ast.Attribute):
            return self._eval_ref(state, expr)
        if isinstance(expr, ast.Constant):
            return SizeVal(ONE, ONE, fresh=True)
        if isinstance(expr, ast.Call):
            return self._eval_call(state, expr)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(state, expr)
        if isinstance(expr, (ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp)):
            if isinstance(expr, ast.BinOp):
                parts = [expr.left, expr.right]
            elif isinstance(expr, ast.BoolOp):
                parts = list(expr.values)
            elif isinstance(expr, ast.Compare):
                parts = [expr.left, *expr.comparators]
            else:
                parts = [expr.operand]
            val = None
            for part in parts:
                val = _join_vals(val, self.eval(state, part))
            if val is not None and val.storage is not None:
                return replace(val, fresh=True, tag=None)
            return val
        if isinstance(expr, _COMP_NODES):
            return self._eval_comp(state, expr)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            storage = count = None
            line = 0
            for elt in expr.elts:
                starred = isinstance(elt, ast.Starred)
                v = self.eval(state, elt.value if starred else elt)
                if v is None:
                    continue
                storage = _join_rank(storage, v.storage)
                if starred:
                    count = _join_rank(count, v.count)
                line = line or v.line
            if storage is None and count is None:
                return None
            return SizeVal(storage, _join_rank(count, ONE), fresh=True,
                           line=line or getattr(expr, "lineno", 0))
        if isinstance(expr, ast.Dict):
            storage = None
            for v_expr in expr.values:
                if v_expr is None:
                    continue
                v = self.eval(state, v_expr)
                if v is not None:
                    storage = _join_rank(storage, v.storage)
            if storage is None:
                return None
            return SizeVal(storage, ONE, fresh=True,
                           line=getattr(expr, "lineno", 0))
        if isinstance(expr, ast.IfExp):
            return _join_vals(
                self.eval(state, expr.body), self.eval(state, expr.orelse)
            )
        if isinstance(expr, (ast.Starred, ast.Await)):
            return self.eval(state, expr.value)
        if isinstance(expr, ast.NamedExpr):
            return self.eval(state, expr.value)
        return None

    def _eval_ref(self, state: dict, expr: ast.AST) -> SizeVal | None:
        if isinstance(expr, ast.Attribute):
            if expr.attr == "shape":
                base = self.eval(state, expr.value)
                if base is not None and base.count is not None:
                    return SizeVal(ONE, base.count, line=expr.lineno,
                                   deps=base.deps)
                return None
            if expr.attr == "value":
                base_key = _var_key(expr.value)
                if base_key is not None:
                    base = state.get(base_key, _MISSING)
                    if (base is not _MISSING and base is not None
                            and base.tag == "broadcast"):
                        # b.value re-materializes the broadcast payload
                        return replace(base, tag=None, fresh=False)
        key = _var_key(expr)
        if key is None:
            return None
        val = state.get(key, _MISSING)
        if val is not _MISSING:
            # Reading a binding is an alias, never a fresh allocation.
            return None if val is None else replace(val, fresh=False)
        return self._table_val(key, getattr(expr, "lineno", 0))

    def _eval_subscript(self, state: dict, expr: ast.Subscript) -> SizeVal | None:
        # x.shape[0] — the leading-dimension magnitude
        if (isinstance(expr.value, ast.Attribute)
                and expr.value.attr == "shape"):
            base = self.eval(state, expr.value.value)
            idx = expr.slice
            if (base is not None and base.count is not None
                    and isinstance(idx, ast.Constant) and idx.value == 0):
                return SizeVal(ONE, base.count, line=expr.lineno,
                               deps=base.deps)
            return SizeVal(ONE, ONE, line=expr.lineno)
        sl = expr.slice
        if isinstance(sl, ast.Slice):
            base = self.eval(state, expr.value)
            if base is None:
                return None
            if (isinstance(sl.lower, ast.Constant)
                    and isinstance(sl.upper, ast.Constant)):
                return SizeVal(ONE, ONE, line=expr.lineno)  # bounded window
            return replace(base, fresh=False)               # view of base
        # Fancy indexing: the result is sized by the *index* array, so
        # it works even when the base is untracked.
        idx_val = self.eval(state, sl)
        if (idx_val is not None and idx_val.storage is not None
                and idx_val.storage > ONE):
            return SizeVal(idx_val.storage, idx_val.storage, fresh=True,
                           line=expr.lineno, deps=idx_val.deps)
        return None  # scalar element: unknown

    def _eval_comp(self, state: dict, comp: ast.AST) -> SizeVal | None:
        count = None
        deps: frozenset = frozenset()
        line = getattr(comp, "lineno", 0)
        for gen in comp.generators:
            it = self.eval(state, gen.iter)
            if it is not None and it.tag is None:
                count = _join_rank(count, it.count)
                deps |= it.deps
        elts = (
            [comp.key, comp.value] if isinstance(comp, ast.DictComp)
            else [comp.elt]
        )
        elt_storage = None
        for elt in elts:
            # Comprehension targets are unbound here; bare-name table
            # fallback for them is acceptable noise (they shadow).
            v = self.eval(state, elt)
            if v is not None:
                elt_storage = _join_rank(elt_storage, v.storage)
                deps |= v.deps
        storage = _join_rank(count, elt_storage)
        if storage is None and count is None:
            return None
        return SizeVal(storage, count, fresh=True, line=line, deps=deps)

    def _shape_count(self, state: dict, shape: ast.AST):
        """Count class of an allocator's shape argument."""
        if isinstance(shape, ast.Tuple):
            count = None
            deps: frozenset = frozenset()
            for dim in shape.elts:
                v = self.eval(state, dim)
                if v is not None:
                    count = _join_rank(count, v.count)
                    deps |= v.deps
            return count, deps
        v = self.eval(state, shape)
        if v is None:
            return None, frozenset()
        return v.count, v.deps

    def _eval_call(self, state: dict, call: ast.Call) -> SizeVal | None:
        fn = call.func
        line = call.lineno
        if isinstance(fn, ast.Name):
            if fn.id == "len" and len(call.args) == 1:
                v = self.eval(state, call.args[0])
                if v is not None and v.count is not None:
                    return SizeVal(ONE, v.count, fresh=True, line=line,
                                   deps=v.deps)
                return None
            if fn.id == "range" and call.args:
                stop = call.args[0] if len(call.args) == 1 else call.args[1]
                v = self.eval(state, stop)
                if v is not None and v.count is not None:
                    return SizeVal(ONE, v.count, fresh=True, line=line,
                                   deps=v.deps)
                return None
            if fn.id in ITER_BUILTINS:
                val = None
                for a in call.args:
                    val = _join_vals(val, self.eval(state, a))
                return _preserved(val)
        # numpy by resolved dotted name (alias-aware: np.floor → numpy.floor)
        dotted = self.analysis.resolve_dotted(fn)
        if dotted is not None and dotted.startswith("numpy."):
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf == "arange" and call.args:
                stop = call.args[0] if len(call.args) == 1 else call.args[1]
                v = self.eval(state, stop)
                if v is not None and v.count is not None:
                    return SizeVal(v.count, v.count, fresh=True, line=line,
                                   deps=v.deps)
                return None
            if leaf in NUMPY_SHAPE_ALLOC and call.args:
                count, deps = self._shape_count(state, call.args[0])
                if count is not None:
                    return SizeVal(count, count, fresh=True, line=line,
                                   deps=deps)
                return None
            if leaf in NUMPY_PRESERVE:
                val = None
                for a in call.args:
                    val = _join_vals(val, self.eval(state, a))
                return _preserved(val)
            return None  # other numpy (bincount, lexsort, …): unknown
        if isinstance(fn, ast.Attribute):
            engine_val = self._eval_engine_call(state, call, fn)
            if engine_val is not _MISSING:
                return engine_val
            recv = self.eval(state, fn.value)
            if recv is not None and fn.attr in ARRAY_PRESERVE_METHODS:
                return replace(recv, fresh=True, tag=None)
        resolved = self.cache.resolve(self.analysis, self.scope, call)
        if resolved is not None:
            mod, node = resolved
            if getattr(node, "name", "") in ("__init__", "__post_init__"):
                return self._ctor_val(state, call)
            return self._apply_summary(
                state, call, node, self.cache.summary(mod, node)
            )
        # Unresolved CapWords call: constructor heuristic — the object
        # pins at least the storage of what it is handed.
        ctor_name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute) else ""
        )
        if ctor_name[:1].isupper():
            return self._ctor_val(state, call)
        return None

    def _eval_engine_call(self, state: dict, call: ast.Call,
                          fn: ast.Attribute):
        """RDD/broadcast lifecycle; ``_MISSING`` when not an engine call."""
        if _is_spark_context(self.analysis, self.scope, fn.value):
            if fn.attr == "broadcast" and call.args:
                v = self.eval(state, call.args[0])
                if v is None:
                    return None
                return replace(v, tag="broadcast", fresh=False)
            if fn.attr in RDD_FACTORY_METHODS and call.args:
                v = self.eval(state, call.args[0])
                if v is None:
                    return None
                return replace(v, tag="rdd", fresh=False)
            return None
        recv = self.eval(state, fn.value)
        recv_type = self.analysis.expr_type(fn.value, self.scope)
        is_rdd = recv_type == "RDD" or (recv is not None and recv.tag == "rdd")
        if not is_rdd:
            return _MISSING
        if fn.attr in COLLECT_METHODS:
            if recv is None:
                return None
            rank = _join_rank(recv.storage, recv.count)
            if rank is None:
                return None
            return SizeVal(rank, rank, fresh=True, line=call.lineno,
                           deps=recv.deps)
        if fn.attr in RDD_CHAIN_METHODS or fn.attr in (
            "persist", "cache", "unpersist"
        ):
            # Lineage op: the size class rides along, still lazy.
            return None if recv is None else replace(recv, tag="rdd")
        return None

    def _ctor_val(self, state: dict, call: ast.Call) -> SizeVal | None:
        storage = None
        deps: frozenset = frozenset()
        args = list(call.args) + [kw.value for kw in call.keywords]
        for a in args:
            if isinstance(a, ast.Starred):
                a = a.value
            v = self.eval(state, a)
            if v is not None:
                storage = _join_rank(storage, v.storage)
                deps |= v.deps
        if storage is None and not deps:
            return None
        return SizeVal(storage, ONE, fresh=True, line=call.lineno, deps=deps)

    def _apply_summary(self, state: dict, call: ast.Call, node,
                       summary: SizeSummary) -> SizeVal | None:
        ret = summary.ret
        if ret is None:
            return None
        storage, count = ret.storage, ret.count
        deps: frozenset = frozenset()
        if ret.deps:
            offset = _self_offset(node, call)
            args_obj = getattr(node, "args", None)
            params = (
                [a.arg for a in list(args_obj.posonlyargs)
                 + list(args_obj.args)][offset:]
                if args_obj is not None else []
            )
            by_name: dict[str, ast.AST] = {}
            for i, a in enumerate(call.args):
                if isinstance(a, ast.Starred):
                    continue
                if i < len(params):
                    by_name[params[i]] = a
            for kw in call.keywords:
                if kw.arg:
                    by_name[kw.arg] = kw.value
            for p in ret.deps:
                arg = by_name.get(p)
                if arg is None:
                    continue
                v = self.eval(state, arg)
                if v is not None:
                    storage = _join_rank(storage, v.storage)
                    count = _join_rank(count, v.count)
                    deps |= v.deps
        if storage is None and count is None and not deps:
            return None
        return SizeVal(storage, count, fresh=True, tag=ret.tag,
                       line=call.lineno, deps=deps)

    # -- the transfer function -------------------------------------------------

    def apply(self, state: dict, instr) -> dict:
        out = dict(state)
        if isinstance(instr, ForBind):
            # Per-iteration elements are unknown; an explicit None entry
            # blocks the name-table fallback from resurrecting them.
            for name in _target_names(instr.target):
                out[name] = None
            return out
        if isinstance(instr, ExceptBind):
            if instr.name:
                out[instr.name] = None
            return out
        if isinstance(instr, WithEnter):
            if instr.item.optional_vars is not None:
                for name in _target_names(instr.item.optional_vars):
                    out[name] = None
            return out
        if not isinstance(instr, ast.AST):
            return out
        if isinstance(instr, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            out[instr.name] = None
            return out
        if isinstance(instr, ast.Assign):
            val = self.eval(state, instr.value)
            for target in instr.targets:
                self._bind(state, out, target, val, instr.value)
            return out
        if isinstance(instr, ast.AnnAssign) and instr.value is not None:
            val = self.eval(state, instr.value)
            self._bind(state, out, instr.target, val, instr.value)
            return out
        if isinstance(instr, ast.AugAssign):
            key = _var_key(instr.target)
            if key is not None:
                cur = state.get(key, _MISSING)
                if cur is _MISSING:
                    cur = self._table_val(key, instr.lineno)
                out[key] = _join_vals(cur, self.eval(state, instr.value))
            return out
        if isinstance(instr, ast.Delete):
            for target in instr.targets:
                key = _var_key(target)
                if key is not None:
                    out[key] = None
            return out
        return out

    def _bind(self, state: dict, out: dict, target, val, value_expr) -> None:
        if isinstance(target, ast.Name):
            out[target.id] = val
            return
        if isinstance(target, ast.Attribute):
            key = _var_key(target)
            if key is not None:
                out[key] = val
            return
        if isinstance(target, ast.Starred):
            self._bind(state, out, target.value, None, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # n, d = x.shape — the leading dimension goes to the first
            # target only (the rest are fixed widths).
            if (isinstance(value_expr, ast.Attribute)
                    and value_expr.attr == "shape" and val is not None):
                for i, sub in enumerate(target.elts):
                    dim = SizeVal(ONE, val.count if i == 0 else ONE,
                                  line=val.line, deps=val.deps)
                    self._bind(state, out, sub, dim, None)
                return
            if (isinstance(value_expr, (ast.Tuple, ast.List))
                    and len(value_expr.elts) == len(target.elts)
                    and not any(isinstance(t, ast.Starred)
                                for t in target.elts)):
                for sub, sub_expr in zip(target.elts, value_expr.elts):
                    self._bind(state, out, sub,
                               self.eval(state, sub_expr), sub_expr)
                return
            for sub in target.elts:
                self._bind(state, out, sub, val, None)

    # -- the check walk --------------------------------------------------------

    def check(self, allowed: set, digest_reduction: bool) -> list[Finding]:
        cfg = self.cache.cfg(self.func)
        states = solve(cfg, _SizeAnalysis(self))
        findings: list[Finding] = []
        seen: set[tuple] = set()

        def emit(rule: str, line: int, col: int, message: str,
                 related: list[tuple[int, str]]) -> None:
            if rule not in allowed:
                return
            key = (rule, line)
            if key in seen:
                return
            seen.add(key)
            findings.append(Finding(
                rule=rule,
                path=self.analysis.path,
                line=line,
                col=col,
                message=message,
                symbol=self.scope.name,
                related=tuple(
                    (self.analysis.path, rline, rmsg)
                    for rline, rmsg in related
                ),
            ))

        for bid in sorted(cfg.blocks):
            st = states.in_states.get(bid)
            if st is None:
                continue
            for instr in cfg.blocks[bid].instrs:
                self._check_instr(st, instr, emit, digest_reduction)
                self.tally(st, instr, self.cache.value_counts)
                st = self.apply(st, instr)
        return findings

    def _related(self, val: SizeVal, line: int) -> list[tuple[int, str]]:
        if val.line and val.line != line:
            return [(val.line,
                     f"tainted {_class_name(val.storage or POINTS)} here")]
        return []

    def _check_instr(self, st: dict, instr, emit,
                     digest_reduction: bool) -> None:
        if isinstance(instr, ForBind):
            it = self.eval(st, instr.iter)
            if (it is not None and it.tag is None
                    and it.count is not None and it.count >= POINTS):
                emit(
                    "SCL002", instr.lineno, 0,
                    f"driver-side loop with {_class_name(it.count)} trip "
                    "count; per-point driver iteration is the merge "
                    "bottleneck — push it into tasks or digest first",
                    self._related(it, instr.lineno),
                )
            return
        if not isinstance(instr, ast.AST):
            return
        if isinstance(instr, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            return
        for call in _calls_within(instr):
            self._check_call(st, call, emit, digest_reduction)
        self._check_assign(st, instr, emit)

    def _check_call(self, st: dict, call: ast.Call, emit,
                    digest_reduction: bool) -> None:
        fn = call.func
        if not isinstance(fn, ast.Attribute):
            return
        if (fn.attr == "broadcast" and call.args
                and _is_spark_context(self.analysis, self.scope, fn.value)):
            v = self.eval(st, call.args[0])
            if (v is not None and v.tag is None
                    and v.storage is not None and v.storage >= POINTS):
                emit(
                    "SCL003", call.lineno, 0,
                    f"broadcast of an {_class_name(v.storage)} value in a "
                    "cell/edges plan; every executor would hold the "
                    "dataset — ship the model or a digest instead",
                    self._related(v, call.lineno),
                )
            return
        if fn.attr not in COLLECT_METHODS:
            return
        recv = self.eval(st, fn.value)
        recv_type = self.analysis.expr_type(fn.value, self.scope)
        is_rdd = recv_type == "RDD" or (recv is not None and recv.tag == "rdd")
        if not is_rdd or recv is None:
            return
        rank = _join_rank(recv.storage, recv.count)
        if rank is None or rank < POINTS:
            return
        if digest_reduction:
            emit(
                "SCL004", call.lineno, 0,
                f"collect() of an un-digested {_class_name(rank)} RDD; an "
                "O(edges)/O(partials) digest reduction exists on the size "
                "manifest — reduce to the digest and collect that",
                self._related(recv, call.lineno),
            )
        else:
            emit(
                "SCL001", call.lineno, 0,
                f"collect() materializes an {_class_name(rank)} dataset on "
                "the driver outside the sanctioned stages",
                self._related(recv, call.lineno),
            )

    def _check_assign(self, st: dict, instr, emit) -> None:
        if isinstance(instr, ast.Assign):
            targets, value = instr.targets, instr.value
        elif isinstance(instr, ast.AnnAssign) and instr.value is not None:
            targets, value = [instr.target], instr.value
        elif isinstance(instr, ast.AugAssign):
            targets, value = [instr.target], instr.value
        else:
            return
        # Collects have their own event (SCL004 / SCL001-collect).
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in COLLECT_METHODS):
            return
        val = self.eval(st, value)
        if val is None or val.tag is not None:
            return
        if val.storage is None or val.storage < POINTS:
            return
        cls = _class_name(val.storage)
        names = [k for k in (_var_key(t) for t in targets) if k] or ["<target>"]
        if val.fresh:
            emit(
                "SCL001", instr.lineno, 0,
                f"driver materializes an {cls} value into {names[0]!r} "
                "outside the sanctioned stages; distribute or digest it",
                self._related(val, instr.lineno),
            )
        elif any(isinstance(t, (ast.Attribute, ast.Subscript))
                 for t in targets):
            emit(
                "SCL001", instr.lineno, 0,
                f"{names[0]!r} retains an {cls} value on the driver "
                "outside the sanctioned stages; the reference outlives "
                "the stage that was allowed to hold it",
                self._related(val, instr.lineno),
            )

    # -- stats -----------------------------------------------------------------

    def tally(self, state: dict, instr, counts: dict) -> None:
        """Per-class value counts for ``--stats`` (assignments only)."""
        if isinstance(instr, ast.Assign):
            value = instr.value
        elif isinstance(instr, ast.AnnAssign) and instr.value is not None:
            value = instr.value
        else:
            return
        val = self.eval(state, value)
        if val is None or val.storage is None:
            counts["unknown"] = counts.get("unknown", 0) + 1
            return
        name = _class_name(val.storage)
        counts[name] = counts.get(name, 0) + 1


class _SizeAnalysis(ForwardAnalysis):
    """Forward dataflow over `SizeVal` environments.

    State: ``None`` (unreached — identity of join) or a dict mapping
    `_var_key` strings to ``SizeVal | None``; an explicit ``None``
    entry means "assigned, class unknown" and blocks the name-table
    fallback.  Joins are per-key value joins, so the height is bounded
    by the lattice height times the number of assigned keys.
    """

    def __init__(self, sizer: _FunctionSizer):
        self.sizer = sizer

    def initial_state(self):
        return dict(self.sizer.seed)

    def bottom(self):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        out = dict(a)
        for key, val in b.items():
            out[key] = _join_vals(out[key], val) if key in out else val
        return out

    def transfer(self, state, instr):
        if state is None:
            return None
        return self.sizer.apply(state, instr)

    def exc_state(self, state, instr):
        return state


# -- the per-project cache -----------------------------------------------------

class _SizeCache:
    """Per-project cache of CFGs, size summaries, scopes, and findings."""

    def __init__(self, project):
        self.project = project
        self._cfgs: dict[int, CFG] = {}
        self._summaries: dict[int, SizeSummary] = {}
        self._in_progress: set[int] = set()
        self._node_owner: dict[int, tuple] = {}
        self.findings: list[Finding] | None = None
        self.functions_checked = 0
        self.value_counts: dict[str, int] = {}
        for name, analysis in project.modules.items():
            for node in analysis._functions_by_scope:
                self._node_owner[id(node)] = (name, analysis)
        entry = shuffle_free_stage_classes(project)
        self.scope_all = project.reachable_from(entry) if entry else {}
        sanctioned = entry & SANCTIONED_STAGES
        self.scope_sanctioned = (
            project.reachable_from(sanctioned) if sanctioned else {}
        )
        bc_entry = _broadcast_scope_classes(project)
        self.scope_broadcast = (
            project.reachable_from(bc_entry) if bc_entry else {}
        )
        self.task_reach = project.task_reachable_by_module()
        self.digest_reduction = any(
            outp in ("O(edges)", "O(partials)")
            for size in size_manifests(project)
            for (_inp, outp, _line) in size.stages.values()
        )

    def cfg(self, func_node: ast.AST) -> CFG:
        key = id(func_node)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(func_node)
        return self._cfgs[key]

    def resolve(self, analysis, scope, call: ast.Call):
        hit = self.project.resolve_call(analysis, scope, call)
        if hit is None:
            return None
        mod, node = hit
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        return mod, node

    def summary(self, module: str, func_node: ast.AST) -> SizeSummary:
        key = id(func_node)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:      # recursion: assume unknown
            return SizeSummary()
        self._in_progress.add(key)
        try:
            summary = self._compute_summary(module, func_node)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def _compute_summary(self, module: str, func_node: ast.AST) -> SizeSummary:
        analysis = self.project.modules.get(module)
        if analysis is None:
            return SizeSummary()
        sizer = _FunctionSizer(self, analysis, func_node, symbolic=True)
        cfg = self.cfg(func_node)
        states = solve(cfg, _SizeAnalysis(sizer))
        ret = None
        for bid in sorted(cfg.blocks):
            st = states.in_states.get(bid)
            if st is None:
                continue
            for instr in cfg.blocks[bid].instrs:
                if isinstance(instr, ast.Return) and instr.value is not None:
                    ret = _join_vals(ret, sizer.eval(st, instr.value))
                st = sizer.apply(st, instr)
        if (ret is not None and ret.storage is None and ret.count is None
                and not ret.deps):
            ret = None
        return SizeSummary(ret=ret)


def _broadcast_scope_classes(project) -> set[str]:
    """Stage classes of the plans under the broadcast-size contract:
    the cell plan and every ``*_edges`` plan (SCL003 scope)."""
    out: set[str] = set()
    for manifest in manifests(project):
        for plan, entries in manifest.plans.items():
            if plan == "cell" or plan.endswith("_edges"):
                out.update(cls for cls, _line in entries)
    return out


def _size_cache(project) -> _SizeCache:
    cache = getattr(project, "_size_cache", None)
    if cache is None:
        cache = _SizeCache(project)
        project._size_cache = cache
    return cache


def _compute_all(project) -> list[Finding]:
    cache = _size_cache(project)
    if cache.findings is not None:
        return cache.findings
    findings: list[Finding] = []
    for name, analysis in sorted(project.modules.items()):
        if is_substrate(name):
            continue
        in_scope = cache.scope_all.get(name, set())
        if not in_scope:
            continue
        sanctioned = cache.scope_sanctioned.get(name, set())
        bc_scope = cache.scope_broadcast.get(name, set())
        tasks = cache.task_reach.get(name, set())
        for node in analysis._functions_by_scope:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node not in in_scope or node in tasks:
                continue
            allowed = {"SCL002", "SCL004"}
            if node not in sanctioned:
                allowed.add("SCL001")
            if node in bc_scope:
                allowed.add("SCL003")
            sizer = _FunctionSizer(cache, analysis, node)
            findings.extend(sizer.check(allowed, cache.digest_reduction))
            cache.functions_checked += 1
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    cache.findings = findings
    return findings


def check_sizeclass(
    project, rules: tuple[str, ...] = SIZECLASS_RULES
) -> list[Finding]:
    """Run the size-class rules; filter to ``rules``."""
    return [f for f in _compute_all(project) if f.rule in rules]


def sizeclass_stats(project) -> dict:
    """Per-class value counts for ``repro lint --stats`` (runs the
    analysis first so every checked assignment is classified)."""
    _compute_all(project)
    cache = _size_cache(project)
    order = {name: rank for rank, name in CLASS_OF_RANK.items()}
    values = dict(sorted(
        cache.value_counts.items(),
        key=lambda kv: (order.get(kv[0], 99), kv[0]),
    ))
    return {"functions": cache.functions_checked, "values": values}

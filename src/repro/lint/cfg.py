"""Per-function control-flow graphs for the flow-sensitive lint layer.

`build_cfg` lowers one function body (def, async def, or lambda) into
basic blocks of *instructions* connected by normal and exceptional
edges.  An instruction is either a simple ``ast`` statement, a bare
expression hoisted out of a compound statement's header (an ``if``
test, a ``for`` iterable), or one of the synthetic markers below that
make implicit control flow explicit to the dataflow layer:

- `ForBind` — the per-iteration target binding of a ``for`` loop;
- `WithEnter` / `WithExit` — the ``__enter__`` binding and the
  guaranteed ``__exit__`` of a ``with`` block (the exit marker sits on
  every path out of the body: fall-through, early ``return``/``break``,
  and the exception edges);
- `ExceptBind` — the ``except ... as e`` binding at a handler entry.

Construction rules (DESIGN.md §8.6):

- branches (``if``/``match``) fork and re-join; loops get a back edge
  to their head plus the not-taken edge (omitted for a literal
  ``while True``, so must-analyses stay precise across infinite loops);
- walrus assignments (``:=``) are hoisted to synthetic ``Assign``
  instructions ahead of their enclosing instruction, ``match`` case
  guards are emitted at their case's entry, and comprehensions are
  lowered to real loop blocks — a `ForBind` head per generator, the
  element expression as a body instruction, and a back edge — so a
  loop-trip-count analysis (SCL002) sees comprehension iteration
  exactly like ``for`` iteration;
- every function has one normal exit block and one *raise exit* block;
  ``return`` routes to the former, an uncaught ``raise`` (and every
  may-raise instruction's exceptional edge) to the latter;
- abnormal exits (``return``/``break``/``continue``/``raise``/
  exception edges) unwind the enclosing frame stack, *duplicating*
  ``finally`` bodies and ``with``-exit markers along the way — the
  normal and exceptional copies of a ``finally`` stay distinct blocks,
  so a must-analysis never merges the two flows;
- an instruction *may raise* when it contains a call, an ``assert``,
  or a ``raise``; its exceptional edges target every enclosing
  handler entry plus the unwound path to the raise exit.

The graph is purely structural: it knows nothing about types or
resources.  `repro.lint.dataflow` runs fixpoints over it and
`repro.lint.typestate` supplies the lifecycle semantics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CFG",
    "Block",
    "ForBind",
    "WithEnter",
    "WithExit",
    "ExceptBind",
    "build_cfg",
    "may_raise",
]


# -- synthetic instructions ---------------------------------------------------

@dataclass(frozen=True)
class ForBind:
    """Per-iteration binding of a ``for`` loop: ``target <- next(iter)``."""

    target: ast.expr
    iter: ast.expr
    lineno: int


@dataclass(frozen=True)
class WithEnter:
    """One ``with`` item entering scope: ``optional_vars <- context_expr``."""

    item: ast.withitem
    lineno: int


@dataclass(frozen=True)
class WithExit:
    """The ``__exit__`` of a ``with`` block — present on *every* path out
    of the body, including the exceptional ones."""

    items: tuple[ast.withitem, ...]
    lineno: int


@dataclass(frozen=True)
class ExceptBind:
    """The ``except ... as name`` binding at a handler entry."""

    name: str | None
    lineno: int


#: Everything a block may hold.
Instr = object


def may_raise(instr: Instr) -> bool:
    """True when the instruction can raise: calls, asserts, raises.

    Synthetic markers never raise on their own (`WithExit` runs
    ``__exit__``, but a raising ``__exit__`` is out of scope for the
    lifecycle rules — treating it as non-raising only loses exception
    paths *after* the release, which is the safe direction).
    """
    if isinstance(instr, (ForBind, WithEnter, WithExit, ExceptBind)):
        return False
    if isinstance(instr, (ast.Raise, ast.Assert)):
        return True
    if isinstance(instr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False        # definition itself; the body runs elsewhere
    if isinstance(instr, ast.AST):
        return any(isinstance(sub, ast.Call) for sub in ast.walk(instr))
    return False


_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _collect_lowerable(node: ast.AST, out: list, is_root: bool = False) -> None:
    if not is_root and isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
    ):
        return              # separate scope: its body is not this CFG's flow
    if isinstance(node, _COMP_NODES):
        out.append(node)
        return              # the builder recurses into it when lowering
    if isinstance(node, ast.NamedExpr):
        out.append(node)
    for child in ast.iter_child_nodes(node):
        _collect_lowerable(child, out)


def _lowerable_parts(instr: ast.AST) -> list[ast.AST]:
    """Walrus bindings and outermost comprehensions inside one
    instruction, in document order.  Nested function/class bodies are
    opaque (their comprehensions run in their own CFGs), and a
    comprehension's own parts are handled by the builder's recursion."""
    if isinstance(
        instr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
    ):
        return []
    out: list[ast.AST] = []
    _collect_lowerable(instr, out, is_root=True)
    return out


# -- graph --------------------------------------------------------------------

@dataclass
class Block:
    """One basic block: straight-line instructions, then edges out."""

    bid: int
    instrs: list[Instr] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)       # normal flow
    exc_succs: set[int] = field(default_factory=set)   # exception flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block({self.bid}, n={len(self.instrs)}, "
            f"succs={sorted(self.succs)}, exc={sorted(self.exc_succs)})"
        )


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.AST
    blocks: dict[int, Block]
    entry: int
    exit: int          # normal exit (returns, fall-off-the-end)
    raise_exit: int    # exceptional exit (uncaught raise / may-raise edge)

    @property
    def num_edges(self) -> int:
        return sum(len(b.succs) for b in self.blocks.values())

    @property
    def num_exc_edges(self) -> int:
        return sum(len(b.exc_succs) for b in self.blocks.values())

    def preds(self) -> dict[int, set[int]]:
        """Predecessors over both edge kinds (for worklist seeding)."""
        out: dict[int, set[int]] = {bid: set() for bid in self.blocks}
        for b in self.blocks.values():
            for s in b.succs | b.exc_succs:
                out[s].add(b.bid)
        return out


# -- construction frames ------------------------------------------------------

@dataclass
class _LoopFrame:
    head: int           # continue target
    after: int          # break target


@dataclass
class _WithFrame:
    items: tuple[ast.withitem, ...]
    lineno: int


@dataclass
class _TryFrame:
    """One ``try``: handler entries catch exceptions raised while this
    frame is innermost; the ``finally`` body (if any) runs on every way
    out.  Frames for handler/else bodies keep the finally but drop the
    handlers (their exceptions are not caught by their own ``try``)."""

    handler_entries: tuple[int, ...]
    finally_body: tuple[ast.stmt, ...] | None
    depth: int          # index of this frame in the stack (for unwinding)


class _Builder:
    def __init__(self, func: ast.AST):
        self.func = func
        self.blocks: dict[int, Block] = {}
        self.entry = self._new().bid
        self.exit = self._new().bid
        self.raise_exit = self._new().bid

    # -- plumbing -------------------------------------------------------------
    def _new(self) -> Block:
        b = Block(bid=len(self.blocks))
        self.blocks[b.bid] = b
        return b

    def build(self) -> CFG:
        body: list[ast.stmt]
        if isinstance(self.func, ast.Lambda):
            expr = ast.Expr(value=self.func.body)
            ast.copy_location(expr, self.func.body)
            body = [expr]
        else:
            body = list(getattr(self.func, "body", []))
        end = self._stmts(body, self.blocks[self.entry], ())
        if end is not None:
            end.succs.add(self.exit)
        return CFG(
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    # -- statement lowering ---------------------------------------------------
    def _stmts(
        self, stmts: list[ast.stmt], cur: Block | None, frames: tuple
    ) -> Block | None:
        """Lower a statement list; returns the fall-through block, or
        None when the tail is unreachable (after return/raise/...)."""
        for stmt in stmts:
            if cur is None:
                break                      # dead code after an exit
            cur = self._stmt(stmt, cur, frames)
        return cur

    def _emit(self, cur: Block, instr: Instr, frames: tuple) -> Block:
        """Append one instruction, first making its implicit control flow
        explicit: walrus bindings are hoisted to synthetic ``Assign``
        instructions and comprehensions are lowered to loop blocks (a
        `ForBind` head per generator, the element as a body instruction,
        and a back edge), so flow analyses see their iteration.  Returns
        the block construction continues in — lowering may move it."""
        if isinstance(instr, ast.AST):
            cur = self._lower_parts(cur, instr, frames)
        cur.instrs.append(instr)
        if may_raise(instr):
            self._add_exception_edges(cur, frames)
        return cur

    # -- expression-level lowering (walrus / comprehensions) ------------------
    def _lower_parts(self, cur: Block, instr: ast.AST, frames: tuple) -> Block:
        for sub in _lowerable_parts(instr):
            if isinstance(sub, ast.NamedExpr):
                bind = ast.Assign(targets=[sub.target], value=sub.value)
                ast.copy_location(bind, sub)
                cur.instrs.append(bind)
                if may_raise(bind):
                    self._add_exception_edges(cur, frames)
            else:
                cur = self._lower_comp(cur, sub, frames)
        return cur

    def _lower_comp(self, cur: Block, comp: ast.AST, frames: tuple) -> Block:
        """One comprehension as explicit loop blocks.  Nested generators
        chain (each head feeds the next); the innermost body holds the
        element expression(s) and the back edge.  The comprehension node
        itself still appears inside its enclosing instruction — analyses
        dedup, and set-join transfer makes the re-visit idempotent."""
        after = self._new()
        first_head: Block | None = None
        for gen in comp.generators:
            cur = self._lower_parts(cur, gen.iter, frames)
            head = self._new()
            cur.succs.add(head.bid)
            head.instrs.append(
                ForBind(gen.target, gen.iter, getattr(comp, "lineno", 0))
            )
            head.succs.add(after.bid)
            if first_head is None:
                first_head = head
            body = self._new()
            head.succs.add(body.bid)
            cur = body
            for cond in gen.ifs:
                cur = self._emit(cur, cond, frames)
        elts = [comp.elt] if not isinstance(comp, ast.DictComp) else \
            [comp.key, comp.value]
        for elt in elts:
            expr = ast.Expr(value=elt)
            ast.copy_location(expr, elt)
            cur = self._emit(cur, expr, frames)
        if first_head is not None:
            cur.succs.add(first_head.bid)
        return after

    def _stmt(self, stmt: ast.stmt, cur: Block, frames: tuple) -> Block | None:
        if isinstance(stmt, ast.Return):
            cur = self._emit(cur, stmt, frames)
            self._unwind_to(cur, frames, 0, self.exit)
            return None
        if isinstance(stmt, ast.Raise):
            self._emit(cur, stmt, frames)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._unwind_loop(cur, frames, isinstance(stmt, ast.Break))
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur, frames)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur, frames)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur, frames)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(stmt, cur, frames)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur, frames)
        # Simple statement (incl. nested def/class, whose bodies are
        # separate CFGs built by their own callers).
        return self._emit(cur, stmt, frames)

    def _if(self, stmt: ast.If, cur: Block, frames: tuple) -> Block | None:
        cur = self._emit(cur, stmt.test, frames)
        then = self._new()
        cur.succs.add(then.bid)
        then_end = self._stmts(stmt.body, then, frames)
        if stmt.orelse:
            other = self._new()
            cur.succs.add(other.bid)
            other_end = self._stmts(stmt.orelse, other, frames)
        else:
            other_end = cur
        ends = [e for e in (then_end, other_end) if e is not None]
        if not ends:
            return None
        join = self._new()
        for e in ends:
            e.succs.add(join.bid)
        return join

    @staticmethod
    def _const_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _while(self, stmt: ast.While, cur: Block, frames: tuple) -> Block | None:
        head = self._new()
        cur.succs.add(head.bid)
        # The back edge targets ``head`` (the test re-evaluates each
        # iteration); branch edges leave the block the test ends in.
        head_end = self._emit(head, stmt.test, frames)
        after = self._new()
        body = self._new()
        head_end.succs.add(body.bid)
        infinite = self._const_true(stmt.test)
        body_end = self._stmts(
            stmt.body, body, frames + (_LoopFrame(head.bid, after.bid),)
        )
        if body_end is not None:
            body_end.succs.add(head.bid)
        if not infinite:
            # while-else runs when the condition goes false (not on break)
            if stmt.orelse:
                orelse = self._new()
                head_end.succs.add(orelse.bid)
                orelse_end = self._stmts(stmt.orelse, orelse, frames)
                if orelse_end is not None:
                    orelse_end.succs.add(after.bid)
            else:
                head_end.succs.add(after.bid)
        reachable = bool(after.instrs) or any(
            after.bid in b.succs for b in self.blocks.values()
        )
        return after if reachable else None

    def _for(self, stmt: ast.For | ast.AsyncFor, cur: Block, frames: tuple) -> Block:
        cur = self._emit(cur, stmt.iter, frames)
        head = self._new()
        cur.succs.add(head.bid)
        head.instrs.append(ForBind(stmt.target, stmt.iter, stmt.lineno))
        after = self._new()
        body = self._new()
        head.succs.add(body.bid)
        body_end = self._stmts(
            stmt.body, body, frames + (_LoopFrame(head.bid, after.bid),)
        )
        if body_end is not None:
            body_end.succs.add(head.bid)
        if stmt.orelse:
            orelse = self._new()
            head.succs.add(orelse.bid)
            orelse_end = self._stmts(stmt.orelse, orelse, frames)
            if orelse_end is not None:
                orelse_end.succs.add(after.bid)
        else:
            head.succs.add(after.bid)
        return after

    def _with(self, stmt: ast.With | ast.AsyncWith, cur: Block, frames: tuple) -> Block | None:
        for item in stmt.items:
            cur = self._emit(cur, WithEnter(item, stmt.lineno), frames)
            # The context expression itself may raise (it's usually a call).
            if may_raise(item.context_expr):
                self._add_exception_edges(cur, frames)
        items = tuple(stmt.items)
        inner = frames + (_WithFrame(items, stmt.lineno),)
        body = self._new()
        cur.succs.add(body.bid)
        body_end = self._stmts(stmt.body, body, inner)
        if body_end is None:
            return None
        out = self._new()
        body_end.succs.add(out.bid)
        out.instrs.append(WithExit(items, stmt.lineno))
        return out

    def _try(self, stmt: ast.Try, cur: Block, frames: tuple) -> Block | None:
        finally_body = tuple(stmt.finalbody) or None
        depth = len(frames)
        handler_entries: list[int] = []
        handlers: list[tuple[Block, ast.ExceptHandler]] = []
        for handler in stmt.handlers:
            hb = self._new()
            hb.instrs.append(ExceptBind(handler.name, handler.lineno))
            handler_entries.append(hb.bid)
            handlers.append((hb, handler))

        body_frame = _TryFrame(tuple(handler_entries), finally_body, depth)
        inner_frame = _TryFrame((), finally_body, depth)   # handlers/else

        body = self._new()
        cur.succs.add(body.bid)
        body_end = self._stmts(stmt.body, body, frames + (body_frame,))

        after = self._new()

        def _to_after(end: Block | None) -> None:
            """Route a normal completion through the finally to ``after``."""
            if end is None:
                return
            if finally_body is None:
                end.succs.add(after.bid)
                return
            fin = self._new()
            end.succs.add(fin.bid)
            fin_end = self._stmts(list(finally_body), fin, frames)
            if fin_end is not None:
                fin_end.succs.add(after.bid)

        if body_end is not None and stmt.orelse:
            else_b = self._new()
            body_end.succs.add(else_b.bid)
            _to_after(self._stmts(stmt.orelse, else_b, frames + (inner_frame,)))
        else:
            _to_after(body_end)

        for hb, handler in handlers:
            _to_after(self._stmts(handler.body, hb, frames + (inner_frame,)))

        reachable = any(after.bid in b.succs for b in self.blocks.values())
        return after if reachable else None

    def _match(self, stmt: ast.Match, cur: Block, frames: tuple) -> Block | None:
        cur = self._emit(cur, stmt.subject, frames)
        join = self._new()
        exhaustive = False
        for case in stmt.cases:
            cb = self._new()
            cur.succs.add(cb.bid)
            # A guard is evaluated after the pattern matches and before
            # the body runs; emit it so flow analyses see its reads/calls.
            if case.guard is not None:
                cb = self._emit(cb, case.guard, frames)
            case_end = self._stmts(case.body, cb, frames)
            if case_end is not None:
                case_end.succs.add(join.bid)
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                exhaustive = True
        if not exhaustive:
            cur.succs.add(join.bid)
        reachable = any(join.bid in b.succs for b in self.blocks.values())
        return join if reachable else None

    # -- unwinding ------------------------------------------------------------
    def _cleanup_chain(
        self, frames: tuple, inner: int, outer: int, target: int, frames_for_finally=None
    ) -> int:
        """Entry block id of the cleanup path running every with-exit and
        ``finally`` body of ``frames[outer:inner]`` (innermost first),
        ending at ``target``.  With no cleanup, ``target`` itself."""
        actions: list[tuple[str, object, int]] = []
        for i in range(inner - 1, outer - 1, -1):
            frame = frames[i]
            if isinstance(frame, _WithFrame):
                actions.append(("with", frame, i))
            elif isinstance(frame, _TryFrame) and frame.finally_body is not None:
                actions.append(("finally", frame, i))
        if not actions:
            return target
        entry: Block | None = None
        cur: Block | None = None
        for kind, frame, idx in actions:
            if cur is None:
                cur = self._new()
                entry = cur
            if kind == "with":
                cur.instrs.append(WithExit(frame.items, frame.lineno))
            else:
                # The duplicated finally body runs in the *enclosing*
                # frame context (its own try no longer guards it).
                end = self._stmts(list(frame.finally_body), cur, frames[:idx])
                if end is None:
                    return entry.bid       # finally itself exits; chain stops
                cur = end
        cur.succs.add(target)
        return entry.bid

    def _unwind_to(self, cur: Block, frames: tuple, outer: int, target: int) -> None:
        """Normal-edge unwind (return / break / continue) from ``cur``
        through cleanup down to frame index ``outer``, then ``target``."""
        cur.succs.add(self._cleanup_chain(frames, len(frames), outer, target))

    def _unwind_loop(self, cur: Block, frames: tuple, is_break: bool) -> None:
        for i in range(len(frames) - 1, -1, -1):
            frame = frames[i]
            if isinstance(frame, _LoopFrame):
                target = frame.after if is_break else frame.head
                cur.succs.add(self._cleanup_chain(frames, len(frames), i + 1, target))
                return
        # break/continue outside a loop: a SyntaxError at runtime; treat
        # as an exit so the builder stays total over malformed input.
        self._unwind_to(cur, frames, 0, self.exit)

    def _add_exception_edges(self, cur: Block, frames: tuple) -> None:
        """Exceptional edges from ``cur``: to every enclosing handler
        (running intervening with-exits/finallys), and the full unwind
        to the raise exit."""
        depth = len(frames)
        for i in range(depth - 1, -1, -1):
            frame = frames[i]
            if isinstance(frame, _TryFrame) and frame.handler_entries:
                for hb in frame.handler_entries:
                    cur.exc_succs.add(
                        self._cleanup_chain(frames, depth, i + 1, hb)
                    )
        cur.exc_succs.add(
            self._cleanup_chain(frames, depth, 0, self.raise_exit)
        )


def build_cfg(func: ast.AST) -> CFG:
    """Build the control-flow graph of one function node."""
    return _Builder(func).build()

"""Task-closure static analysis (``repro lint``).

Machine-checks the invariants the engine's correctness story rests on
(DESIGN.md §8): task closures must not capture driver state or
unpicklable objects, task-reachable code must be deterministic, and the
paper-pipeline modules must stay shuffle-free.  Violations are
`Finding`s; a committed baseline (`lint-baseline.json`) grandfathers
known ones, and CI fails on anything new.

    from repro.lint import run_lint
    report = run_lint(["src"], baseline_path="lint-baseline.json")
    assert report.clean, report.render_text()
"""

from .analyzer import LintError, discover_files, lint_file, run_lint
from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_baseline,
    new_findings,
    write_baseline,
)
from .closures import ModuleAnalysis, TaskFunction
from .findings import Finding, LintReport
from .rules import RULES, rule_catalogue, run_rules

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineError",
    "Finding",
    "LintError",
    "LintReport",
    "ModuleAnalysis",
    "RULES",
    "TaskFunction",
    "discover_files",
    "lint_file",
    "load_baseline",
    "new_findings",
    "rule_catalogue",
    "run_lint",
    "run_rules",
    "write_baseline",
]

"""Whole-program static analysis (``repro lint``).

Machine-checks the invariants the engine's correctness story rests on
(DESIGN.md §8): task closures must not capture driver state or
unpicklable objects, task-reachable code must be deterministic, the
paper pipeline must stay shuffle-free — *proven* from the
interprocedural call graph and a static RDD-lineage pass rather than a
path allowlist — task code must not read accumulators, mutate
broadcasts, or invoke RDD actions, and every plan's stage contract
chain must be complete and acyclic.  A flow-sensitive layer
(`repro.lint.cfg` → `repro.lint.dataflow` → `repro.lint.typestate`)
builds a per-function CFG and runs typestate over it: no use of a
stopped context (LIF001), no write to a closed event log (LIF002), no
action on an unpersisted RDD/Broadcast (LIF003), no persisted RDD
leaked past an exit path (RES001), and no lock/context held across an
escaping exception path (RES002).  A size-class abstract
interpretation (`repro.lint.sizeclass`) over the O(1) ⊑ O(cells) ⊑
O(partials) ⊑ O(edges) ⊑ O(points) lattice proves the driver stays
sub-O(points) outside the sanctioned stages (SCL001–SCL004), seeded
from the pure-literal ``SIZE_MANIFEST`` next to ``STAGE_MANIFEST``.
Violations are `Finding`s; a
committed baseline (`lint-baseline.json`) grandfathers known ones, and
CI fails on anything new (uploading SARIF so findings annotate diffs).

    from repro.lint import run_lint
    report = run_lint(["src"], baseline_path="lint-baseline.json")
    assert report.clean, report.render_text()
"""

from .analyzer import (
    LintError,
    build_project,
    discover_files,
    lint_file,
    run_lint,
)
from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_baseline,
    new_findings,
    write_baseline,
)
from .callgraph import Project, module_name_for
from .closures import ModuleAnalysis, TaskFunction
from .findings import Finding, LintReport
from .rules import (
    PROJECT_RULES,
    RULES,
    rule_catalogue,
    run_project_rules,
    run_rules,
)
from .cfg import CFG, Block, build_cfg
from .dataflow import BlockStates, ForwardAnalysis, solve
from .sarif import render_sarif, to_sarif
from .sizeclass import SIZECLASS_RULES, check_sizeclass, sizeclass_stats
from .typestate import TYPESTATE_RULES, check_typestate, flow_stats

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineError",
    "Block",
    "BlockStates",
    "CFG",
    "Finding",
    "ForwardAnalysis",
    "TYPESTATE_RULES",
    "LintError",
    "LintReport",
    "ModuleAnalysis",
    "PROJECT_RULES",
    "Project",
    "RULES",
    "SIZECLASS_RULES",
    "TaskFunction",
    "build_cfg",
    "build_project",
    "check_sizeclass",
    "check_typestate",
    "discover_files",
    "flow_stats",
    "lint_file",
    "load_baseline",
    "module_name_for",
    "new_findings",
    "render_sarif",
    "rule_catalogue",
    "run_lint",
    "run_project_rules",
    "run_rules",
    "sizeclass_stats",
    "solve",
    "to_sarif",
    "write_baseline",
]

"""AST scope & closure analysis underpinning the task-closure linter.

The engine's correctness story (retry/speculation safety, cloudpickle
shipping to the processes backend) hinges on what functions handed to
RDD operations *capture* and *call*.  This module computes, for one
source file:

- a scope tree (module / def / lambda) with per-scope local names and a
  heuristic type environment (``sc = SparkContext(...)`` binds ``sc``
  to ``SparkContext``; ``b = sc.broadcast(x)`` binds ``b`` to
  ``Broadcast``; chains like ``sc.parallelize(...).map(f)`` stay RDD);
- the set of *task functions*: lambdas and local defs passed to RDD
  operations (``.map``/``.foreach_partition_with_index``/…) or to
  ``run_job``;
- the *task-reachable* closure: task functions plus every same-module
  function they (transitively) call;
- free-variable (capture) analysis: names a function reads that are
  bound in an enclosing function or module scope, with their inferred
  types;
- the raw material the whole-program layer (`repro.lint.callgraph`)
  builds on: a function table keyed by qualname, a class/method table,
  import bindings that keep their relative-import level, and the task
  arguments that could not be resolved inside this module (imported
  functions handed straight to an RDD op).

Everything here is a heuristic over a single file — cross-module
resolution lives in `repro.lint.callgraph.Project` — and the
heuristics are tuned to this repo's idioms and err toward silence on
unknown types (rules only fire on *positively identified* hazards).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

# RDD methods whose function argument executes inside tasks.  Generic
# names ("map", "filter", "foreach", "reduce") only count when the
# receiver is positively RDD-typed, to avoid flagging e.g.
# ThreadPoolExecutor.map; the distinctive names always count.
RDD_OP_METHODS_DISTINCTIVE = {
    "flat_map",
    "map_partitions",
    "map_partitions_with_index",
    "foreach_partition",
    "foreach_partition_with_index",
    "flat_map_values",
    "key_by",
    "map_values",
    "take_ordered",
    "sort_by",
    "_run",   # repo idiom: RDD._run(func) submits func as the action body
}
RDD_OP_METHODS_GENERIC = {"map", "filter", "foreach", "reduce", "fold", "aggregate"}
RDD_OP_METHODS = RDD_OP_METHODS_DISTINCTIVE | RDD_OP_METHODS_GENERIC

# Methods returning an RDD when invoked on an RDD (for chain typing).
RDD_CHAIN_METHODS = RDD_OP_METHODS | {
    "union",
    "glom",
    "coalesce",
    "sample",
    "cache",
    "persist",
    "unpersist",
    "partition_by",
    "group_by_key",
    "reduce_by_key",
    "distinct",
    "cartesian",
    "zip_with_index",
    "keys",
    "values",
    "cogroup",
    "join",
    "left_outer_join",
    "subtract_by_key",
}

# Context methods creating RDDs.
RDD_FACTORY_METHODS = {"parallelize", "text_file", "from_source"}

# Constructor / call → inferred type tag.
_CTOR_TYPES = {
    "SparkContext": "SparkContext",
    "StreamingContext": "StreamingContext",
    "EventLog": "EventLog",
    "BlockManager": "BlockManager",
    "ShuffleManager": "ShuffleManager",
    "Lock": "Lock",
    "RLock": "Lock",
    "Condition": "Lock",
    "Semaphore": "Lock",
    "BoundedSemaphore": "Lock",
    "Event": "Lock",
    "Barrier": "Lock",
    "Thread": "Thread",
    "open": "File",
    "socket": "Socket",
}

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class Scope:
    """One lexical scope: module, function def, or lambda."""

    node: ast.AST
    name: str                       # dotted-ish display name
    parent: "Scope | None"
    locals: set[str] = field(default_factory=set)
    globals_decl: set[str] = field(default_factory=set)
    types: dict[str, str] = field(default_factory=dict)   # name -> type tag
    children: list["Scope"] = field(default_factory=list)
    class_name: str = ""            # enclosing class, for self-call resolution

    @property
    def is_module(self) -> bool:
        return isinstance(self.node, ast.Module)

    def lookup_type(self, name: str) -> str | None:
        """Inferred type of ``name``, searching enclosing scopes."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.types:
                return scope.types[name]
            scope = scope.parent
        return None

    def binding_scope(self, name: str) -> "Scope | None":
        """Nearest enclosing scope (including self) declaring ``name``."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.locals:
                return scope
            scope = scope.parent
        return None


@dataclass
class TaskFunction:
    """A function positively identified as executing inside tasks."""

    scope: Scope                    # the function's own scope
    node: ast.AST                   # FunctionDef | AsyncFunctionDef | Lambda
    via: str                        # RDD op that received it ("map", ...)
    call_line: int                  # line of the receiving call


@dataclass
class UnresolvedTaskArg:
    """A name passed to an RDD op that is not a same-module function.

    `repro.lint.callgraph.Project` retries the resolution with the
    cross-module import table: an imported helper handed straight to
    ``.map`` becomes a task function of its *defining* module.
    """

    name: str                       # dotted reference as written
    via: str                        # RDD op that received it
    call_line: int
    scope: Scope                    # scope the call appears in


class ModuleAnalysis:
    """Scope tree + task-function extraction for one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.import_aliases: dict[str, str] = {}   # local name -> dotted origin
        # local name -> (module, symbol | None, relative level); symbol is
        # None for plain ``import x.y`` bindings.  The level survives so
        # the project layer can absolutize relative imports.
        self.import_bindings: dict[str, tuple[str, str | None, int]] = {}
        self.module_scope = Scope(tree, "<module>", None)
        self._scope_of_node: dict[ast.AST, Scope] = {tree: self.module_scope}
        self._functions_by_scope: dict[ast.AST, Scope] = {}
        self._methods: dict[tuple[str, str], ast.AST] = {}  # (class, name) -> def
        self.functions: dict[str, ast.AST] = {}    # qualname -> def node
        self.classes: dict[str, dict[str, ast.AST]] = {}   # class -> methods
        self._collected: set[int] = set()          # scopes with bindings done
        self._return_memo: dict[ast.AST, str | None] = {}
        self._return_guard: set[ast.AST] = set()
        self._build(tree, self.module_scope, class_name="")
        # Bindings are collected *after* the whole scope tree exists so
        # forward references (a function defined later in the file)
        # still contribute call-return types.
        self._ensure_bindings(self.module_scope)
        for scope in self._functions_by_scope.values():
            self._ensure_bindings(scope)
        self.task_functions: list[TaskFunction] = []
        self.unresolved_task_args: list[UnresolvedTaskArg] = []
        # Cross-module task functions injected by the project layer:
        # functions of this module passed to RDD ops elsewhere.
        self.extra_task_functions: list[TaskFunction] = []
        self._find_task_functions()
        self.task_reachable: set[ast.AST] = self._close_over_calls()

    # -- scope construction -------------------------------------------------
    def _build(self, node: ast.AST, scope: Scope, class_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            self._dispatch(child, scope, class_name)

    def _dispatch(self, node: ast.AST, scope: Scope, class_name: str) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._record_import(node, scope)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.locals.add(node.name)
            display = node.name if scope.is_module else f"{scope.name}.{node.name}"
            if class_name:
                display = f"{class_name}.{node.name}"
            sub = Scope(node, display, scope, class_name=class_name)
            self._add_args(node.args, sub)
            scope.children.append(sub)
            self._scope_of_node[node] = sub
            self._functions_by_scope[node] = sub
            self.functions[display] = node
            if class_name:
                self._methods[(class_name, node.name)] = node
                self.classes.setdefault(class_name, {})[node.name] = node
            for stmt in node.body:
                self._dispatch(stmt, sub, "")
        elif isinstance(node, ast.Lambda):
            self._build_lambda(node, scope)
        elif isinstance(node, ast.ClassDef):
            scope.locals.add(node.name)
            self.classes.setdefault(node.name, {})
            self._build(node, scope, class_name=node.name)
        else:
            self._build(node, scope, class_name=class_name)

    def _build_lambda(self, node: ast.Lambda, scope: Scope) -> None:
        if node in self._scope_of_node:
            return
        sub = Scope(node, f"{scope.name}.<lambda>", scope, class_name=scope.class_name)
        self._add_args(node.args, sub)
        scope.children.append(sub)
        self._scope_of_node[node] = sub
        self._functions_by_scope[node] = sub
        self._dispatch(node.body, sub, class_name="")

    def _add_args(self, args: ast.arguments, scope: Scope) -> None:
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            scope.locals.add(a.arg)
            if a.annotation is not None:
                tag = self._annotation_type(a.annotation)
                if tag:
                    scope.types[a.arg] = tag

    def _record_import(self, node: ast.AST, scope: Scope) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                scope.locals.add(local)
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                self.import_aliases[local] = origin
                self.import_bindings[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0],
                    None,
                    0,
                )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                scope.locals.add(local)
                self.import_aliases[local] = (
                    f"{module}.{alias.name}" if module else alias.name
                )
                self.import_bindings[local] = (module, alias.name, node.level)

    def _ensure_bindings(self, scope: Scope) -> None:
        """Collect a scope's bindings once; safe to call out of order."""
        if id(scope) in self._collected:
            return
        self._collected.add(id(scope))
        self._collect_bindings(scope.node, scope)

    def _collect_bindings(self, func: ast.AST, scope: Scope) -> None:
        """Locals + heuristic types for one function scope (non-nested part)."""

        class Collector(ast.NodeVisitor):
            def __init__(self, analysis: "ModuleAnalysis"):
                self.analysis = analysis

            # Do not descend into nested scopes — they bind their own.
            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                pass

            visit_AsyncFunctionDef = visit_FunctionDef

            def visit_Lambda(self, node: ast.Lambda) -> None:
                pass

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                scope.locals.add(node.name)

            def visit_Global(self, node: ast.Global) -> None:
                scope.globals_decl.update(node.names)

            def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
                scope.globals_decl.update(node.names)

            def visit_Import(self, node: ast.Import) -> None:
                self.analysis._record_import(node, scope)

            def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
                self.analysis._record_import(node, scope)

            def visit_Assign(self, node: ast.Assign) -> None:
                tag = self.analysis._expr_type(node.value, scope)
                for target in node.targets:
                    for name in _target_names(target):
                        scope.locals.add(name)
                        if tag:
                            scope.types[name] = tag
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                if isinstance(node.target, ast.Name):
                    scope.locals.add(node.target.id)
                    tag = self.analysis._annotation_type(node.annotation)
                    if not tag and node.value is not None:
                        tag = self.analysis._expr_type(node.value, scope)
                    if tag:
                        scope.types[node.target.id] = tag
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                for name in _target_names(node.target):
                    scope.locals.add(name)
                self.generic_visit(node)

            def visit_For(self, node: ast.For) -> None:
                for name in _target_names(node.target):
                    scope.locals.add(name)
                self.generic_visit(node)

            visit_AsyncFor = visit_For

            def visit_With(self, node: ast.With) -> None:
                for item in node.items:
                    if item.optional_vars is not None:
                        tag = self.analysis._expr_type(item.context_expr, scope)
                        for name in _target_names(item.optional_vars):
                            scope.locals.add(name)
                            if tag:
                                scope.types[name] = tag
                self.generic_visit(node)

            visit_AsyncWith = visit_With

            def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
                if node.name:
                    scope.locals.add(node.name)
                self.generic_visit(node)

            def visit_comprehension(self, node: ast.comprehension) -> None:
                # Comprehension targets live in a nested scope in py3;
                # registering them as locals here only prevents false
                # capture reports, never causes one.
                for name in _target_names(node.target):
                    scope.locals.add(name)
                self.generic_visit(node)

            def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
                if isinstance(node.target, ast.Name):
                    scope.locals.add(node.target.id)
                self.generic_visit(node)

        collector = Collector(self)
        body = [func.body] if isinstance(func, ast.Lambda) else getattr(func, "body", [])
        for stmt in body:
            collector.visit(stmt)

    # -- type inference ------------------------------------------------------
    def _annotation_type(self, annotation: ast.AST) -> str | None:
        name = _tail_name(annotation)
        if name in _CTOR_TYPES:
            return _CTOR_TYPES[name]
        if name in ("RDD", "Broadcast", "Accumulator"):
            return name
        return None

    def _expr_type(self, expr: ast.AST, scope: Scope) -> str | None:
        """Heuristic type tag of an expression, or None when unknown."""
        if isinstance(expr, ast.Name):
            tag = scope.lookup_type(expr.id)
            if tag is None and (expr.id == "sc" or expr.id.endswith("_sc")):
                # Untyped parameters named like contexts: this codebase's
                # pervasive convention (fit(self, sc), _run_job(self, sc)).
                return "SparkContext"
            return tag
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value, scope)
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Name):
            resolved = self.import_aliases.get(func.id, func.id)
            tail = resolved.split(".")[-1]
            if tail in _CTOR_TYPES:
                return _CTOR_TYPES[tail]
            # Call-return typing: ``make_rdd(sc).map(f)`` — the chain
            # starts at whatever the same-module function returns.
            target = self._resolve_function(func.id, scope)
            if target is not None:
                return self._return_type(target)
            if tail[:1].isupper() and tail not in _BUILTIN_NAMES:
                # Instance of a (possibly imported) class: tag it with
                # the class name so method calls on it can be resolved
                # by the project-level call graph.
                return tail
            return None
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _CTOR_TYPES and _base_module(func, self.import_aliases) in (
                "threading",
                "socket",
                "builtins",
                "io",
                "multiprocessing",
            ):
                return _CTOR_TYPES[attr]
            recv_type = self._expr_type(func.value, scope)
            if attr == "broadcast" and recv_type in ("SparkContext", None):
                # sc.broadcast(...) — only trust a known context receiver
                return "Broadcast" if recv_type == "SparkContext" else None
            if attr in ("accumulator", "list_accumulator") and recv_type == "SparkContext":
                return "Accumulator"
            if attr in RDD_FACTORY_METHODS and recv_type == "SparkContext":
                return "RDD"
            if attr in RDD_CHAIN_METHODS and recv_type == "RDD":
                return "RDD"
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and scope.class_name
            ):
                target = self._methods.get((scope.class_name, attr))
                if target is not None:
                    return self._return_type(target)
        return None

    def _return_type(self, func_node: ast.AST) -> str | None:
        """Inferred type of a same-module function's return value.

        The single tag every ``return`` expression agrees on, or None
        when returns disagree or nothing is positively typed.  Memoized;
        recursion (mutual or self) resolves to None.
        """
        if func_node in self._return_memo:
            return self._return_memo[func_node]
        if func_node in self._return_guard:
            return None
        self._return_guard.add(func_node)
        try:
            scope = self._scope_of_node.get(func_node)
            if scope is None:
                return None
            self._ensure_bindings(scope)
            if isinstance(func_node, ast.Lambda):
                tags = {self._expr_type(func_node.body, scope)}
            else:
                tags = set()
                stack: list[ast.AST] = list(getattr(func_node, "body", []))
                while stack:
                    sub = stack.pop()
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                        ast.Lambda)):
                        continue   # nested scope: its returns are not ours
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        tags.add(self._expr_type(sub.value, scope))
                    stack.extend(ast.iter_child_nodes(sub))
            tags.discard(None)
            tag = tags.pop() if len(tags) == 1 else None
            self._return_memo[func_node] = tag
            return tag
        finally:
            self._return_guard.discard(func_node)

    def _receiver_is_rdd(self, call: ast.Call, scope: Scope) -> bool:
        """True when the call's receiver is positively RDD-typed."""
        if not isinstance(call.func, ast.Attribute):
            return False
        recv = call.func.value
        if self._expr_type(recv, scope) == "RDD":
            return True
        # Heuristic of last resort: receivers literally named like RDDs.
        if isinstance(recv, ast.Name) and recv.id.lower().endswith("rdd"):
            return True
        return False

    def receiver_is_rdd(self, call: ast.Call, scope: Scope) -> bool:
        """Public face of `_receiver_is_rdd` for the project-level rules."""
        return self._receiver_is_rdd(call, scope)

    def expr_type(self, expr: ast.AST, scope: Scope) -> str | None:
        """Public face of `_expr_type` for the project-level rules."""
        return self._expr_type(expr, scope)

    # -- task-function extraction -------------------------------------------
    def scope_of(self, node: ast.AST) -> Scope:
        """The Scope object owning ``node`` (nearest enclosing function)."""
        return self._scope_of_node[node]

    def enclosing_scope(self, node: ast.AST) -> Scope:
        """Scope in which ``node`` appears (found by containment walk)."""
        best = self.module_scope
        for func_node, scope in self._functions_by_scope.items():
            if _contains(func_node, node) and func_node is not node:
                if _contains(best.node, func_node) or best.is_module:
                    best = scope
        return best

    def _find_task_functions(self) -> None:
        analysis = self

        class Finder(ast.NodeVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                analysis._maybe_task_call(node)
                self.generic_visit(node)

        Finder().visit(self.tree)

    def _maybe_task_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if attr not in RDD_OP_METHODS and attr != "run_job":
            return
        scope = self.enclosing_scope(call)
        is_rdd_op = attr in RDD_OP_METHODS_DISTINCTIVE or (
            attr in RDD_OP_METHODS_GENERIC and self._receiver_is_rdd(call, scope)
        )
        is_run_job = attr == "run_job" and len(call.args) >= 2
        if not (is_rdd_op or is_run_job):
            return
        candidates = list(call.args[1:] if is_run_job else call.args)
        for arg in candidates:
            self._register_task_arg(arg, attr, call.lineno, scope)

    def _register_task_arg(
        self, arg: ast.AST, via: str, line: int, scope: Scope
    ) -> None:
        if isinstance(arg, ast.Lambda):
            self.task_functions.append(
                TaskFunction(self._scope_of_node[arg], arg, via, line)
            )
        elif isinstance(arg, ast.Name):
            target = self._resolve_function(arg.id, scope)
            if target is not None:
                self.task_functions.append(
                    TaskFunction(self._scope_of_node[target], target, via, line)
                )
            else:
                self.unresolved_task_args.append(
                    UnresolvedTaskArg(arg.id, via, line, scope)
                )
        elif isinstance(arg, ast.Attribute):
            dotted = raw_dotted(arg)
            if dotted is not None:
                self.unresolved_task_args.append(
                    UnresolvedTaskArg(dotted, via, line, scope)
                )

    def _resolve_function(self, name: str, scope: Scope) -> ast.AST | None:
        """Find the def bound to ``name`` in enclosing scopes (same module)."""
        s: Scope | None = scope
        while s is not None:
            for child in s.children:
                node = child.node
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == name
                ):
                    return node
            s = s.parent
        return None

    # -- reachability --------------------------------------------------------
    def _close_over_calls(self) -> set[ast.AST]:
        """Task functions plus all same-module functions they call."""
        reachable: set[ast.AST] = set()
        frontier = [tf.node for tf in self.task_functions]
        while frontier:
            node = frontier.pop()
            if node in reachable:
                continue
            reachable.add(node)
            scope = self._scope_of_node[node]
            for call in _calls_in(node):
                target: ast.AST | None = None
                if isinstance(call.func, ast.Name):
                    target = self._resolve_function(call.func.id, scope)
                elif (
                    isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                    and scope.class_name
                ):
                    target = self._methods.get((scope.class_name, call.func.attr))
                if target is not None and target not in reachable:
                    frontier.append(target)
        return reachable

    # -- capture analysis ----------------------------------------------------
    def captures(self, func_node: ast.AST) -> list[tuple[str, ast.Name, Scope]]:
        """Free variables of a function: (name, first-load node, binding scope).

        Only names bound in an *enclosing* scope are returned; builtins
        and genuinely-global unknowns are skipped.
        """
        scope = self._scope_of_node[func_node]
        own = scope.locals | scope.globals_decl
        nested_locals = _all_nested_locals(scope)
        seen: dict[str, ast.Name] = {}
        for name_node in _loads_in(func_node):
            nid = name_node.id
            if nid in own or nid in nested_locals or nid in _BUILTIN_NAMES:
                continue
            if nid not in seen:
                seen[nid] = name_node
        out: list[tuple[str, ast.Name, Scope]] = []
        for nid, node in seen.items():
            binder = scope.parent.binding_scope(nid) if scope.parent else None
            if binder is not None:
                out.append((nid, node, binder))
        return out

    def resolve_dotted(self, expr: ast.AST) -> str | None:
        """Dotted call-target path with import aliases expanded.

        ``np.random.rand`` → ``numpy.random.rand`` (given ``import numpy
        as np``); ``time()`` → ``time.time`` (given ``from time import
        time``).  Returns None for non-name bases (method calls etc.).
        """
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.import_aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


# -- small AST helpers -------------------------------------------------------

def raw_dotted(expr: ast.AST) -> str | None:
    """Dotted path exactly as written (``helpers.work``), no alias
    expansion — the project layer absolutizes the base itself."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _tail_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].split("[")[0]
    if isinstance(node, ast.Subscript):
        return _tail_name(node.value)
    return None


def _base_module(attr: ast.Attribute, aliases: dict[str, str]) -> str:
    node: ast.AST = attr.value
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return aliases.get(node.id, node.id)
    return ""


def _contains(outer: ast.AST, inner: ast.AST) -> bool:
    if outer is inner:
        return True
    for node in ast.walk(outer):
        if node is inner:
            return True
    return False


def _calls_in(func_node: ast.AST) -> list[ast.Call]:
    body = func_node.body if isinstance(func_node, ast.Lambda) else func_node
    nodes = [body] if isinstance(func_node, ast.Lambda) else list(
        getattr(func_node, "body", [])
    )
    out: list[ast.Call] = []
    for n in nodes:
        for sub in ast.walk(n):
            if isinstance(sub, ast.Call):
                out.append(sub)
    return out


def _loads_in(func_node: ast.AST) -> list[ast.Name]:
    nodes = (
        [func_node.body]
        if isinstance(func_node, ast.Lambda)
        else list(getattr(func_node, "body", []))
    )
    out: list[ast.Name] = []
    for n in nodes:
        for sub in ast.walk(n):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                out.append(sub)
    return out


def _all_nested_locals(scope: Scope) -> set[str]:
    """Locals of nested scopes — names a nested def binds are not captures
    of the outer function *through* this function."""
    out: set[str] = set()
    stack = list(scope.children)
    while stack:
        s = stack.pop()
        out |= s.locals
        stack.extend(s.children)
    return out

"""Static plan-contract checking (PLN001/PLN002) and manifest parsing.

`repro.pipeline.plans` mirrors its plan compositions into a pure-literal
``STAGE_MANIFEST`` (plan name → tuple of stage *class* names) plus
``SHUFFLE_FREE_PLANS``.  This module reads both straight off the AST —
no import, no execution — joins them with the ``name``/``requires``/
``provides`` class-attribute literals of the stage classes themselves,
and verifies every plan's dataflow chain:

- ``PLN001`` plan-contract-incomplete — a manifest entry names a stage
  class no scanned module defines, a stage's requirement is provided by
  no stage at all, or two stages in one plan share a runtime stage name
  (checkpoint keys would collide);
- ``PLN002`` plan-contract-cycle — a requirement is provided only by a
  *later* stage: the chain is complete but the ordering is circular, so
  the plan can never run front to back.

A module may additionally declare a pure-literal ``SIZE_MANIFEST``
(stage class → ``{"input": class, "output": class}`` over the size
lattice of DESIGN.md §8.7).  When present it is checked for consistency
with the same module's ``STAGE_MANIFEST`` (every entry names a manifest
stage, every manifest stage is covered, classes come from the lattice)
under PLN001, and it seeds the size-class abstract interpretation
(`repro.lint.sizeclass`, the SCL rules).

The manifest also feeds `repro.lint.lineage`: the stage classes of the
shuffle-free plans are SHF001 entry points, so adding a stage to the
``spark``/``spatial`` compositions automatically puts it under the
zero-shuffle contract.

The check is deliberately against the *class-default* contracts; a
constructor override (``BuildIndex(requires=("points", "perm"))``) can
only narrow scheduling within an already-valid plan, and the runtime
`Plan.__post_init__` + runner validation cover the instance level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .callgraph import Project

STAGE_MANIFEST_NAME = "STAGE_MANIFEST"
SHUFFLE_FREE_NAME = "SHUFFLE_FREE_PLANS"
SIZE_MANIFEST_NAME = "SIZE_MANIFEST"

#: The size-class chain, smallest first (DESIGN.md §8.7).
SIZE_CLASSES = ("O(1)", "O(cells)", "O(partials)", "O(edges)", "O(points)")


@dataclass(frozen=True)
class StageContract:
    """A stage class's static dataflow contract (class-attr literals)."""

    class_name: str
    module: str
    path: str
    lineno: int
    stage_name: str                 # runtime ``name`` attr ("" if absent)
    requires: tuple[str, ...]
    provides: tuple[str, ...]


@dataclass(frozen=True)
class PlanManifest:
    """One module's ``STAGE_MANIFEST`` + ``SHUFFLE_FREE_PLANS`` literals."""

    module: str
    path: str
    # plan name -> [(stage class name, line of the literal)], in order
    plans: dict[str, list[tuple[str, int]]]
    shuffle_free: tuple[str, ...]


def _string_tuple(node: ast.AST) -> tuple[str, ...] | None:
    """A Tuple/List of string constants, or None when anything else."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: list[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return tuple(out)


def stage_contracts(project: "Project") -> dict[str, StageContract]:
    """Class-default contracts of every top-level class declaring one.

    Only classes assigning a literal ``requires`` or ``provides`` class
    attribute participate; the first definition of a name wins (stage
    class names are unique in this repo).
    """
    out: dict[str, StageContract] = {}
    for module, analysis in project.modules.items():
        for node in analysis.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: dict[str, tuple[str, ...]] = {}
            stage_name = ""
            for stmt in node.body:
                if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                    continue
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "name":
                    if isinstance(stmt.value, ast.Constant) and isinstance(
                        stmt.value.value, str
                    ):
                        stage_name = stmt.value.value
                elif target.id in ("requires", "provides"):
                    keys = _string_tuple(stmt.value)
                    if keys is not None:
                        attrs[target.id] = keys
            if not attrs:
                continue
            out.setdefault(
                node.name,
                StageContract(
                    class_name=node.name,
                    module=module,
                    path=analysis.path,
                    lineno=node.lineno,
                    stage_name=stage_name,
                    requires=attrs.get("requires", ()),
                    provides=attrs.get("provides", ()),
                ),
            )
    return out


def manifests(project: "Project") -> list[PlanManifest]:
    """Every ``STAGE_MANIFEST`` literal in the scanned modules."""
    out: list[PlanManifest] = []
    for module, analysis in project.modules.items():
        plans: dict[str, list[tuple[str, int]]] = {}
        shuffle_free: tuple[str, ...] = ()
        for node in analysis.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == STAGE_MANIFEST_NAME and isinstance(node.value, ast.Dict):
                for key, value in zip(node.value.keys, node.value.values):
                    if not (
                        isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ):
                        continue
                    if not isinstance(value, (ast.Tuple, ast.List)):
                        continue
                    entries: list[tuple[str, int]] = []
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            entries.append((elt.value, elt.lineno))
                    plans[key.value] = entries
            elif target.id == SHUFFLE_FREE_NAME:
                keys = _string_tuple(node.value)
                if keys is not None:
                    shuffle_free = keys
        if plans:
            out.append(
                PlanManifest(
                    module=module,
                    path=analysis.path,
                    plans=plans,
                    shuffle_free=shuffle_free,
                )
            )
    return out


@dataclass(frozen=True)
class SizeManifest:
    """One module's ``SIZE_MANIFEST`` literal: per-stage size classes."""

    module: str
    path: str
    # stage class name -> (input class, output class, line of the entry)
    stages: dict[str, tuple[str, str, int]]


def size_manifests(project: "Project") -> list[SizeManifest]:
    """Every ``SIZE_MANIFEST`` literal in the scanned modules.

    Entries are read permissively (non-string keys or classes are kept
    as ``""``); `check_plan_contracts` reports the malformed ones.
    """
    out: list[SizeManifest] = []
    for module, analysis in project.modules.items():
        for node in analysis.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Name)
                and target.id == SIZE_MANIFEST_NAME
                and isinstance(node.value, ast.Dict)
            ):
                continue
            stages: dict[str, tuple[str, str, int]] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (
                    isinstance(key, ast.Constant) and isinstance(key.value, str)
                ):
                    continue
                classes = {"input": "", "output": ""}
                if isinstance(value, ast.Dict):
                    for k, v in zip(value.keys, value.values):
                        if (
                            isinstance(k, ast.Constant)
                            and k.value in classes
                            and isinstance(v, ast.Constant)
                            and isinstance(v.value, str)
                        ):
                            classes[k.value] = v.value
                stages[key.value] = (
                    classes["input"], classes["output"], key.lineno
                )
            if stages:
                out.append(
                    SizeManifest(module=module, path=analysis.path, stages=stages)
                )
    return out


def shuffle_free_stage_classes(project: "Project") -> set[str]:
    """Stage class names composing the shuffle-free plans — SHF001
    entry points derived from the manifest, not hand-maintained."""
    out: set[str] = set()
    for manifest in manifests(project):
        for plan in manifest.shuffle_free:
            out.update(cls for cls, _line in manifest.plans.get(plan, []))
    return out


def check_plan_contracts(
    project: "Project", rules: tuple[str, ...] = ("PLN001", "PLN002")
) -> list[Finding]:
    """Verify every manifest plan's needs/provides chain statically."""
    contracts = stage_contracts(project)
    out: list[Finding] = []

    def emit(rule: str, path: str, line: int, message: str, plan: str) -> None:
        if rule in rules:
            out.append(
                Finding(
                    rule=rule, path=path, line=line, col=0,
                    message=message, symbol=f"plan:{plan}",
                )
            )

    for manifest in manifests(project):
        for plan, entries in manifest.plans.items():
            seq = [(cls, line, contracts.get(cls)) for cls, line in entries]
            seen_names: set[str] = set()
            available: set[str] = set()
            for idx, (cls, line, contract) in enumerate(seq):
                if contract is None:
                    emit(
                        "PLN001", manifest.path, line,
                        f"stage class {cls!r} is not defined in any scanned "
                        "module; the plan cannot be constructed", plan,
                    )
                    continue
                runtime_name = contract.stage_name or cls
                if runtime_name in seen_names:
                    emit(
                        "PLN001", manifest.path, line,
                        f"stage {cls!r} reuses runtime stage name "
                        f"{runtime_name!r}; checkpoint keys would collide",
                        plan,
                    )
                seen_names.add(runtime_name)
                for req in contract.requires:
                    if req in available:
                        continue
                    provided_later = any(
                        later is not None and req in later.provides
                        for _cls, _line, later in seq[idx + 1:]
                    )
                    if provided_later:
                        emit(
                            "PLN002", manifest.path, line,
                            f"stage {cls!r} requires {req!r}, which is "
                            "provided only by a later stage: the contract "
                            "chain is circular, the plan can never run "
                            "front to back", plan,
                        )
                    else:
                        emit(
                            "PLN001", manifest.path, line,
                            f"stage {cls!r} requires {req!r}, which no "
                            "stage in the plan provides: the chain is "
                            "incomplete", plan,
                        )
                available |= set(contract.provides)

    # Size-manifest consistency (gated on a module declaring one at all,
    # so plan fixtures without size contracts stay clean): every entry
    # must name a stage class of the same module's STAGE_MANIFEST, carry
    # classes from the lattice, and every manifest stage must be covered.
    stage_classes_by_module: dict[str, set[str]] = {}
    for manifest in manifests(project):
        classes = stage_classes_by_module.setdefault(manifest.module, set())
        for entries in manifest.plans.values():
            classes.update(cls for cls, _line in entries)
    for size in size_manifests(project):
        known = stage_classes_by_module.get(size.module, set())
        for cls, (inp, outp, line) in sorted(size.stages.items()):
            if known and cls not in known:
                emit(
                    "PLN001", size.path, line,
                    f"size manifest entry {cls!r} names no stage class of "
                    f"this module's {STAGE_MANIFEST_NAME}", f"size:{cls}",
                )
            for role, value in (("input", inp), ("output", outp)):
                if value not in SIZE_CLASSES:
                    emit(
                        "PLN001", size.path, line,
                        f"size manifest entry {cls!r} has {role} class "
                        f"{value!r}; expected one of {', '.join(SIZE_CLASSES)}",
                        f"size:{cls}",
                    )
        for cls in sorted(known - set(size.stages)):
            emit(
                "PLN001", size.path, 1,
                f"stage class {cls!r} appears in {STAGE_MANIFEST_NAME} but "
                f"has no {SIZE_MANIFEST_NAME} entry; declare its driver "
                "input/output size classes", f"size:{cls}",
            )
    return out

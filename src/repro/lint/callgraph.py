"""Whole-program layer: modules, imports, and the interprocedural call graph.

`Project` stitches the per-file `ModuleAnalysis` objects into one
program: it names modules (package-aware, so relative imports resolve),
absolutizes every import binding, resolves calls *across* modules —
through ``from``-imports, module aliases, ``self`` dispatch,
constructor-typed receivers, and package ``__init__`` re-exports — and
exposes the two reachability queries the rules are built on:

- **task reachability** (`task_reachable_by_module`): every function
  transitively callable from a task closure, across module boundaries,
  so CAP001/PCK001/DET001 fire through helper modules;
- **entry reachability** (`reachable_from`): every function transitively
  callable from a set of entry-point classes — the raw material of the
  SHF001 lineage proof (`repro.lint.lineage`).

The engine package is the *substrate boundary*: modules with an
``engine`` path component implement the RDD machinery itself (including
the shuffle subsystem the naive baseline uses), so reachability never
crosses from application code into them.  Calls on engine-API-typed
receivers (`RDD`, `SparkContext`, `Broadcast`, `Accumulator`) are
*lineage operations* interpreted by the dataflow rules, not call edges.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from .closures import ModuleAnalysis, Scope, TaskFunction, raw_dotted

# Receiver type tags that mark the application/engine API boundary:
# method calls on these are lineage operations, never call edges.
ENGINE_API_TAGS = frozenset({
    "RDD", "SparkContext", "StreamingContext", "Broadcast", "Accumulator",
    "EventLog", "BlockManager", "ShuffleManager",
    "Lock", "File", "Thread", "Socket",
})

#: node key in the interprocedural graph
NodeKey = tuple[str, str]   # (module dotted name, qualname)


def module_name_for(path: str) -> str:
    """Dotted module name for a file, walking up while ``__init__.py``
    marks the parent as a package (``src/repro/dbscan/core.py`` →
    ``repro.dbscan.core``; a bare fixture file → its stem)."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    d = os.path.dirname(path)
    while d and os.path.isfile(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        d = os.path.dirname(d)
    name = ".".join(reversed(parts))
    return name[: -len(".__init__")] if name.endswith(".__init__") else name


def is_substrate(module: str) -> bool:
    """True for engine-substrate modules (reachability never enters)."""
    return "engine" in module.split(".")


class Project:
    """All scanned modules plus the interprocedural call graph."""

    def __init__(self, units: list[tuple[str, ModuleAnalysis]]):
        self.modules: dict[str, ModuleAnalysis] = {}
        for name, analysis in units:
            analysis.module_name = name
            self.modules[name] = analysis
        # local name -> absolute dotted origin, per module
        self.abs_aliases: dict[str, dict[str, str]] = {
            name: self._absolutize(name, analysis)
            for name, analysis in self.modules.items()
        }
        self._inject_cross_module_task_args()

    # -- import absolutization ----------------------------------------------
    @staticmethod
    def _resolve_relative(module: str, base: str, level: int) -> str | None:
        """Absolute module for a ``from``-import with ``level`` dots."""
        if level == 0:
            return base
        parts = module.split(".")
        if level > len(parts):
            return None
        head = parts[: len(parts) - level]
        return ".".join(head + base.split(".")) if base else ".".join(head)

    def _absolutize(self, name: str, analysis: ModuleAnalysis) -> dict[str, str]:
        out: dict[str, str] = {}
        for local, (module, symbol, level) in analysis.import_bindings.items():
            if symbol is None:                     # plain ``import x.y [as z]``
                out[local] = module
                continue
            base = self._resolve_relative(name, module, level)
            if base is None:
                continue
            out[local] = f"{base}.{symbol}" if base else symbol
        return out

    # -- symbol lookup -------------------------------------------------------
    def lookup(self, dotted: str, _depth: int = 0) -> tuple[str, str, ast.AST] | None:
        """Resolve an absolute dotted path to ``(module, qualname, node)``.

        Follows package ``__init__`` re-exports (``repro.kdtree.KDTree``
        → ``repro.kdtree.kdtree.KDTree``) up to a small depth.  A class
        resolves to its definition marker: qualname is the class name and
        the node is its ``__init__`` (or ``__post_init__``) when present.
        """
        if _depth > 8:
            return None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:i])
            analysis = self.modules.get(mod)
            if analysis is None:
                continue
            rest = parts[i:]
            if len(rest) == 1:
                sym = rest[0]
                if sym in analysis.functions and "." not in sym:
                    return (mod, sym, analysis.functions[sym])
                if sym in analysis.classes:
                    ctor = analysis.classes[sym].get("__init__") \
                        or analysis.classes[sym].get("__post_init__")
                    return (mod, sym, ctor) if ctor is not None else (mod, sym, None)
                # re-export: ``from .kdtree import KDTree`` in __init__
                target = self.abs_aliases.get(mod, {}).get(sym)
                if target is not None and target != dotted:
                    return self.lookup(target, _depth + 1)
                return None
            if len(rest) == 2:
                cls, meth = rest
                node = analysis.classes.get(cls, {}).get(meth)
                if node is not None:
                    return (mod, f"{cls}.{meth}", node)
                target = self.abs_aliases.get(mod, {}).get(cls)
                if target is not None:
                    return self.lookup(f"{target}.{meth}", _depth + 1)
                return None
            return None
        return None

    def find_class(
        self, analysis: ModuleAnalysis, class_name: str
    ) -> tuple[str, dict[str, ast.AST]] | None:
        """Locate a class by name as seen *from* ``analysis``'s module:
        defined locally, imported (following re-exports), or — as a last
        resort — defined in exactly one scanned module."""
        if class_name in analysis.classes:
            return (analysis.module_name, analysis.classes[class_name])
        target = self.abs_aliases.get(analysis.module_name, {}).get(class_name)
        if target is not None:
            hit = self.lookup(target)
            if hit is not None:
                mod, qual, _node = hit
                if qual == class_name and class_name in self.modules[mod].classes:
                    return (mod, self.modules[mod].classes[class_name])
        owners = [
            name for name, a in self.modules.items() if class_name in a.classes
        ]
        if len(owners) == 1:
            return (owners[0], self.modules[owners[0]].classes[class_name])
        return None

    # -- call-edge resolution ------------------------------------------------
    def qualname_of(self, analysis: ModuleAnalysis, node: ast.AST) -> str:
        """Graph qualname for a function node (lambdas keyed by line)."""
        scope = analysis.scope_of(node)
        if isinstance(node, ast.Lambda):
            return f"{scope.name}@{node.lineno}"
        return scope.name

    def resolve_call(
        self, analysis: ModuleAnalysis, scope: Scope, call: ast.Call
    ) -> tuple[str, ast.AST] | None:
        """The (module, function node) a call positively targets, if any."""
        func = call.func
        if isinstance(func, ast.Name):
            local = analysis._resolve_function(func.id, scope)
            if local is not None:
                return (analysis.module_name, local)
            if func.id in analysis.classes:          # local constructor call
                methods = analysis.classes[func.id]
                ctor = methods.get("__init__") or methods.get("__post_init__")
                if ctor is not None:
                    return (analysis.module_name, ctor)
                return None
            dotted = self.abs_aliases.get(analysis.module_name, {}).get(func.id)
            if dotted is not None:
                hit = self.lookup(dotted)
                if hit is not None and hit[2] is not None:
                    return (hit[0], hit[2])
            return None
        if not isinstance(func, ast.Attribute):
            return None
        # self.method() inside a class body
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and scope.class_name
        ):
            target = analysis._methods.get((scope.class_name, func.attr))
            if target is not None:
                return (analysis.module_name, target)
            return None
        # module-qualified call: helpers.work(...), pkg.mod.fn(...)
        dotted = raw_dotted(func)
        if dotted is not None:
            base, rest = dotted.split(".", 1)
            origin = self.abs_aliases.get(analysis.module_name, {}).get(base)
            if origin is not None:
                hit = self.lookup(f"{origin}.{rest}")
                if hit is not None and hit[2] is not None:
                    return (hit[0], hit[2])
        # constructor-typed receiver: runner = PipelineRunner(...);
        # runner.run(...) — engine-API receivers are lineage ops, not edges.
        recv_type = analysis.expr_type(func.value, scope)
        if recv_type is not None and recv_type not in ENGINE_API_TAGS:
            owner = self.find_class(analysis, recv_type)
            if owner is not None:
                mod, methods = owner
                target = methods.get(func.attr)
                if target is not None:
                    return (mod, target)
        return None

    # -- cross-module task-argument injection --------------------------------
    def _inject_cross_module_task_args(self) -> None:
        """Resolve names passed to RDD ops that weren't same-module defs.

        An imported helper handed to ``.map`` becomes a task function of
        its defining module (`extra_task_functions`), so capture and
        determinism rules see it exactly like a locally-defined one.
        """
        for analysis in self.modules.values():
            aliases = self.abs_aliases.get(analysis.module_name, {})
            for arg in analysis.unresolved_task_args:
                base, _, rest = arg.name.partition(".")
                origin = aliases.get(base)
                if origin is None:
                    continue
                hit = self.lookup(f"{origin}.{rest}" if rest else origin)
                if hit is None or hit[2] is None:
                    continue
                mod, _qual, node = hit
                if is_substrate(mod):
                    continue
                owner = self.modules[mod]
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                owner.extra_task_functions.append(
                    TaskFunction(owner.scope_of(node), node, arg.via, node.lineno)
                )

    # -- reachability ---------------------------------------------------------
    def _callsites(
        self, analysis: ModuleAnalysis, node: ast.AST
    ) -> list[ast.Call]:
        from .closures import _calls_in

        return _calls_in(node)

    def _successors(
        self, analysis: ModuleAnalysis, node: ast.AST
    ) -> list[tuple[str, ast.AST]]:
        scope = analysis.scope_of(node)
        out: list[tuple[str, ast.AST]] = []
        for call in self._callsites(analysis, node):
            hit = self.resolve_call(analysis, scope, call)
            if hit is not None:
                out.append(hit)
        return out

    def _close(
        self, seeds: list[tuple[str, ast.AST]], cross_into_substrate: bool = False
    ) -> dict[str, set[ast.AST]]:
        """BFS closure over call edges, grouped per module."""
        reached: dict[str, set[ast.AST]] = {}
        frontier = list(seeds)
        seen: set[tuple[str, int]] = set()
        while frontier:
            mod, node = frontier.pop()
            key = (mod, id(node))
            if key in seen:
                continue
            seen.add(key)
            reached.setdefault(mod, set()).add(node)
            analysis = self.modules[mod]
            for tmod, tnode in self._successors(analysis, node):
                if tmod != mod and is_substrate(tmod) and not cross_into_substrate:
                    continue   # application code never enters the engine
                frontier.append((tmod, tnode))
        return reached

    def task_reachable_by_module(self) -> dict[str, set[ast.AST]]:
        """Task functions plus everything they call, across modules."""
        seeds: list[tuple[str, ast.AST]] = []
        for name, analysis in self.modules.items():
            for tf in analysis.task_functions + analysis.extra_task_functions:
                seeds.append((name, tf.node))
        return self._close(seeds)

    def reachable_from(
        self, entry_classes: set[str]
    ) -> dict[str, set[ast.AST]]:
        """Everything callable from the methods of the named classes
        (application layer only — the engine boundary is not crossed)."""
        seeds: list[tuple[str, ast.AST]] = []
        for name, analysis in self.modules.items():
            if is_substrate(name):
                continue
            for cls, methods in analysis.classes.items():
                if cls in entry_classes:
                    seeds.extend((name, node) for node in methods.values())
        return self._close(seeds)

    def entry_modules(self, entry_classes: set[str]) -> set[str]:
        """Modules defining at least one entry-point class."""
        return {
            name
            for name, analysis in self.modules.items()
            if any(cls in entry_classes for cls in analysis.classes)
        }

    # -- graph statistics -----------------------------------------------------
    def graph(self) -> tuple[list[NodeKey], dict[NodeKey, set[NodeKey]]]:
        """The full (module, qualname)-keyed call graph, for stats."""
        nodes: list[NodeKey] = []
        node_of: dict[tuple[str, int], NodeKey] = {}
        items: list[tuple[str, ModuleAnalysis, ast.AST]] = []
        for name, analysis in self.modules.items():
            for node in analysis._functions_by_scope:
                key = (name, self.qualname_of(analysis, node))
                nodes.append(key)
                node_of[(name, id(node))] = key
                items.append((name, analysis, node))
        edges: dict[NodeKey, set[NodeKey]] = {key: set() for key in nodes}
        for name, analysis, node in items:
            src = node_of[(name, id(node))]
            for tmod, tnode in self._successors(analysis, node):
                dst = node_of.get((tmod, id(tnode)))
                if dst is not None:
                    edges[src].add(dst)
        return nodes, edges

    def graph_stats(self) -> tuple[int, int, int]:
        """(nodes, edges, strongly connected components)."""
        nodes, edges = self.graph()
        return len(nodes), sum(len(v) for v in edges.values()), \
            len(strongly_connected_components(nodes, edges))


def strongly_connected_components(
    nodes: list[NodeKey], edges: dict[NodeKey, set[NodeKey]]
) -> list[list[NodeKey]]:
    """Tarjan's algorithm, iterative (the call graph can be deep)."""
    index: dict[NodeKey, int] = {}
    lowlink: dict[NodeKey, int] = {}
    on_stack: set[NodeKey] = set()
    stack: list[NodeKey] = []
    sccs: list[list[NodeKey]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[NodeKey, Iterator[NodeKey]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                scc: list[NodeKey] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)
    return sccs

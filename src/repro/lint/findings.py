"""Lint findings: the unit of output of the task-closure analyzer.

A `Finding` pins one rule violation to a file/line/symbol.  Its
``fingerprint`` deliberately excludes line numbers *and* directories
(only the file's basename participates) so that committed baselines
survive unrelated edits above the finding and directory reshuffles
around it; duplicates of the same fingerprint are counted, not
collapsed (see `repro.lint.baseline`).
"""

from __future__ import annotations

import hashlib
import json
import posixpath
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str          # rule id, e.g. "CAP001"
    path: str          # posix-style path as scanned
    line: int
    col: int
    message: str       # human-readable, line-number free (baseline-stable)
    symbol: str = ""   # enclosing function/scope, "" for module level
    # Secondary sites (acquire/stop/close/persist) as (path, line, message)
    # triples; rendered as SARIF relatedLocations.  Deliberately excluded
    # from the fingerprint: line numbers drift with unrelated edits.
    related: tuple = ()

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: no line numbers, and
        only the file's basename (directory renames keep it stable)."""
        base = posixpath.basename(self.path.replace("\\", "/"))
        raw = f"{self.rule}|{base}|{self.symbol}|{self.message}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One text line: ``path:line:col RULE message [in symbol]``."""
        where = f" [in {self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}{where}"

    def to_dict(self) -> dict:
        """JSON-ready representation (includes the fingerprint)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
            "related": [
                {"path": p, "line": line, "message": msg}
                for (p, line, msg) in self.related
            ],
        }


@dataclass
class LintReport:
    """All findings of a run plus the subset new vs. the baseline."""

    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baseline_path: str | None = None
    files_scanned: int = 0
    # Optional run statistics (``repro lint --stats``): per-rule finding
    # counts plus call-graph size.  None unless requested.
    stats: dict | None = None

    @property
    def clean(self) -> bool:
        """True when no finding is new relative to the baseline."""
        return not self.new

    def render_text(self) -> str:
        """Human-readable report; new findings are marked."""
        lines = []
        new_fps = {f.fingerprint for f in self.new}
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
            mark = "NEW " if f.fingerprint in new_fps else "    "
            lines.append(mark + f.render())
        summary = ", ".join(f"{r}={n}" for r, n in sorted(counts.items())) or "none"
        lines.append(
            f"{len(self.findings)} finding(s) ({summary}) in "
            f"{self.files_scanned} file(s); {len(self.new)} new vs baseline"
            + (f" {self.baseline_path}" if self.baseline_path else " (no baseline)")
        )
        return "\n".join(lines)

    def render_stats(self) -> str:
        """Human-readable run statistics (requires collect_stats)."""
        if self.stats is None:
            return "no statistics collected"
        lines = ["per-rule findings:"]
        rules = self.stats.get("rules", {})
        if rules:
            lines.extend(f"  {rid:8s} {n}" for rid, n in rules.items())
        else:
            lines.append("  (none)")
        g = self.stats.get("graph", {})
        lines.append(
            f"call graph: {g.get('nodes', 0)} nodes, {g.get('edges', 0)} "
            f"edges, {g.get('sccs', 0)} SCCs over "
            f"{self.stats.get('modules', 0)} module(s)"
        )
        c = self.stats.get("cfg")
        if c:
            lines.append(
                f"control flow: {c.get('functions', 0)} function CFG(s), "
                f"{c.get('blocks', 0)} blocks, {c.get('edges', 0)} edges "
                f"(+{c.get('exc_edges', 0)} exceptional)"
            )
        s = self.stats.get("sizes")
        if s:
            values = s.get("values", {})
            classes = ", ".join(
                f"{name}={n}" for name, n in values.items()
            ) or "none"
            lines.append(
                f"size classes: {s.get('functions', 0)} driver function(s) "
                f"checked; values by class: {classes}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report for CI."""
        payload = {
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.to_dict() for f in self.new],
            "baseline": self.baseline_path,
            "files_scanned": self.files_scanned,
            "clean": self.clean,
        }
        if self.stats is not None:
            payload["stats"] = self.stats
        return json.dumps(payload, indent=2)

"""DataNode: stores block replicas as files on local disk."""

from __future__ import annotations

import os


class DataNode:
    """Stores block replicas as files in its own directory."""
    def __init__(self, node_id: int, root: str):
        self.node_id = node_id
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _block_path(self, block_id: int) -> str:
        return os.path.join(self.root, f"blk_{block_id}")

    def write_block(self, block_id: int, data: bytes) -> None:
        """Persist one block replica."""
        with open(self._block_path(block_id), "wb") as f:
            f.write(data)

    def read_block(self, block_id: int) -> bytes:
        """Read one block replica (KeyError-like on missing)."""
        path = self._block_path(block_id)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"datanode {self.node_id} has no replica of block {block_id}"
            )
        with open(path, "rb") as f:
            return f.read()

    def has_block(self, block_id: int) -> bool:
        """True iff a replica of the block is present."""
        return os.path.exists(self._block_path(block_id))

    def delete_block(self, block_id: int) -> None:
        """Remove a replica if present."""
        path = self._block_path(block_id)
        if os.path.exists(path):
            os.unlink(path)

    def block_ids(self) -> list[int]:
        """Ids of all replicas held."""
        out = []
        for name in os.listdir(self.root):
            if name.startswith("blk_"):
                out.append(int(name[4:]))
        return sorted(out)

"""NameNode: HDFS metadata — files, blocks, and replica placement.

Holds no data itself, only the mapping ``path → [blocks]`` and
``block → [datanodes holding a replica]``, exactly the split of
responsibilities in Hadoop (paper Figure 1/2 context).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field


@dataclass
class BlockInfo:
    """One block's length and replica placement."""
    block_id: int
    length: int
    replicas: list[int] = field(default_factory=list)  # datanode ids


@dataclass
class FileInfo:
    """A file's ordered block list."""
    path: str
    blocks: list[BlockInfo] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total number of elements."""
        return sum(b.length for b in self.blocks)


class NameNode:
    """Metadata authority: files, blocks, replicas, liveness."""
    def __init__(self, replication: int, num_datanodes: int, seed: int = 0):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if num_datanodes < 1:
            raise ValueError(f"need at least one datanode, got {num_datanodes}")
        self.replication = min(replication, num_datanodes)
        self.num_datanodes = num_datanodes
        self._files: dict[str, FileInfo] = {}
        self._next_block = itertools.count()
        self._rng = random.Random(seed)
        self._dead: set[int] = set()

    # -- metadata ops ------------------------------------------------------
    def create_file(self, path: str) -> FileInfo:
        """Register a new (empty) file."""
        if path in self._files:
            raise FileExistsError(f"hdfs path already exists: {path}")
        info = FileInfo(path)
        self._files[path] = info
        return info

    def allocate_block(self, info: FileInfo, length: int) -> BlockInfo:
        """Pick replica datanodes (random placement, like default HDFS)."""
        alive = [d for d in range(self.num_datanodes) if d not in self._dead]
        if len(alive) < 1:
            raise RuntimeError("no live datanodes")
        replicas = self._rng.sample(alive, min(self.replication, len(alive)))
        block = BlockInfo(next(self._next_block), length, replicas)
        info.blocks.append(block)
        return block

    def get_file(self, path: str) -> FileInfo:
        """Look up file metadata."""
        if path not in self._files:
            raise FileNotFoundError(f"no such hdfs file: {path}")
        return self._files[path]

    def exists(self, path: str) -> bool:
        """True iff the path is registered."""
        return path in self._files

    def delete(self, path: str) -> FileInfo:
        """Unregister a file; returns its metadata."""
        return self._files.pop(self.get_file(path).path)

    def listdir(self, prefix: str = "") -> list[str]:
        """Paths starting with the given prefix."""
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- failure handling ----------------------------------------------------
    def mark_dead(self, datanode_id: int) -> None:
        """Mark a datanode as failed."""
        self._dead.add(datanode_id)

    def mark_alive(self, datanode_id: int) -> None:
        """Mark a datanode as recovered."""
        self._dead.discard(datanode_id)

    def live_replicas(self, block: BlockInfo) -> list[int]:
        """Replica datanodes currently alive."""
        return [d for d in block.replicas if d not in self._dead]

    def under_replicated_blocks(self) -> list[BlockInfo]:
        """Blocks with fewer live replicas than the target."""
        out = []
        for info in self._files.values():
            for b in info.blocks:
                if 0 < len(self.live_replicas(b)) < self.replication:
                    out.append(b)
        return out

"""Mini distributed filesystem with blocks, replication, and failure recovery."""

from .datanode import DataNode
from .filesystem import DEFAULT_BLOCK_SIZE, HdfsFile, MiniHDFS
from .namenode import BlockInfo, FileInfo, NameNode

__all__ = [
    "MiniHDFS",
    "HdfsFile",
    "NameNode",
    "DataNode",
    "BlockInfo",
    "FileInfo",
    "DEFAULT_BLOCK_SIZE",
]

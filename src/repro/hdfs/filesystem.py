"""MiniHDFS: a block-based distributed filesystem on local disk.

Files are chopped into fixed-size blocks, each replicated across
several datanode directories; the namenode tracks placement.  Reads
survive datanode failures as long as one replica lives — the
replication-based fault tolerance the paper attributes to
HDFS/MapReduce (Section II-B), contrasted with Spark's lineage.

`HdfsFile` exposes the ``num_splits()/read_split(i)`` source protocol,
so an HDFS file plugs straight into ``SparkContext.from_source`` and
into MapReduce input splits: one split per block, line-aligned the way
Hadoop record readers are (a split consumes the line spanning its end;
it skips the partial line at its start).
"""

from __future__ import annotations

import os
import shutil

from .datanode import DataNode
from .namenode import BlockInfo, FileInfo, NameNode

DEFAULT_BLOCK_SIZE = 1 << 20  # 1 MiB — small, so files split realistically


class MiniHDFS:
    """Block-based filesystem: namenode + datanode dirs on local disk."""
    def __init__(
        self,
        root: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
        num_datanodes: int = 4,
        seed: int = 0,
    ):
        if block_size < 16:
            raise ValueError(f"block_size too small: {block_size}")
        self.root = root
        self.block_size = block_size
        self.namenode = NameNode(replication, num_datanodes, seed=seed)
        self.datanodes = [
            DataNode(i, os.path.join(root, f"dn{i}")) for i in range(num_datanodes)
        ]

    # -- writes ----------------------------------------------------------------
    def put_bytes(self, path: str, data: bytes) -> FileInfo:
        """Store ``data`` at ``path``, splitting into replicated blocks."""
        info = self.namenode.create_file(path)
        for off in range(0, max(len(data), 1), self.block_size):
            chunk = data[off : off + self.block_size]
            block = self.namenode.allocate_block(info, len(chunk))
            for d in block.replicas:
                self.datanodes[d].write_block(block.block_id, chunk)
        return info

    def put_text(self, path: str, text: str) -> FileInfo:
        """Store a UTF-8 string at the path."""
        return self.put_bytes(path, text.encode("utf-8"))

    def put_local_file(self, local_path: str, hdfs_path: str) -> FileInfo:
        """Copy a local file into HDFS."""
        with open(local_path, "rb") as f:
            return self.put_bytes(hdfs_path, f.read())

    # -- reads -------------------------------------------------------------------
    def read_block(self, block: BlockInfo) -> bytes:
        """Read from the first live replica; fail only if all are dead."""
        live = self.namenode.live_replicas(block)
        last_error: Exception | None = None
        for d in live:
            try:
                return self.datanodes[d].read_block(block.block_id)
            except FileNotFoundError as exc:  # replica lost on disk
                last_error = exc
        raise IOError(
            f"block {block.block_id} unreadable: no live replica"
        ) from last_error

    def get_bytes(self, path: str) -> bytes:
        """Read a whole file's bytes via live replicas."""
        info = self.namenode.get_file(path)
        return b"".join(self.read_block(b) for b in info.blocks)

    def get_text(self, path: str) -> str:
        """Read a whole file as UTF-8 text."""
        return self.get_bytes(path).decode("utf-8")

    def open(self, path: str) -> "HdfsFile":
        """Open a file for split-based reading."""
        return HdfsFile(self, self.namenode.get_file(path))

    # -- namespace ops --------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """True iff the path exists."""
        return self.namenode.exists(path)

    def listdir(self, prefix: str = "") -> list[str]:
        """Paths under the given prefix."""
        return self.namenode.listdir(prefix)

    def delete(self, path: str) -> None:
        """Remove a file and its replicas."""
        info = self.namenode.delete(path)
        for block in info.blocks:
            for d in block.replicas:
                self.datanodes[d].delete_block(block.block_id)

    # -- failure simulation -------------------------------------------------------------
    def kill_datanode(self, datanode_id: int) -> None:
        """Simulate a datanode crash: metadata marks it dead, disk wiped."""
        self.namenode.mark_dead(datanode_id)
        shutil.rmtree(self.datanodes[datanode_id].root, ignore_errors=True)
        os.makedirs(self.datanodes[datanode_id].root, exist_ok=True)

    def re_replicate(self) -> int:
        """Restore replication of under-replicated blocks from live copies.
        Returns the number of new replicas created."""
        created = 0
        for block in self.namenode.under_replicated_blocks():
            data = self.read_block(block)
            live = set(self.namenode.live_replicas(block))
            for d in range(len(self.datanodes)):
                if len(live) >= self.namenode.replication:
                    break
                if d in live or d in self.namenode._dead:
                    continue
                self.datanodes[d].write_block(block.block_id, data)
                block.replicas.append(d)
                live.add(d)
                created += 1
        return created


class HdfsFile:
    """Line-oriented, block-aligned splits of one HDFS file."""

    def __init__(self, fs: MiniHDFS, info: FileInfo):
        self._fs = fs
        self._info = info
        self.path = info.path

    def num_splits(self) -> int:
        """Number of input splits."""
        return max(1, len(self._info.blocks))

    def read_split(self, i: int) -> list[str]:
        """Read one split's records."""
        blocks = self._info.blocks
        if not blocks:
            return []
        if not 0 <= i < len(blocks):
            raise IndexError(f"split {i} out of range")
        data = self._fs.read_block(blocks[i])
        # A split owns the line that *starts* inside it.  If the previous
        # block does not end with a newline, our first partial line belongs
        # to split i-1: skip it.  If our last line is cut, pull the rest
        # from following blocks.
        if i > 0:
            prev = self._fs.read_block(blocks[i - 1])
            if not prev.endswith(b"\n"):
                nl = data.find(b"\n")
                data = b"" if nl < 0 else data[nl + 1 :]
        j = i + 1
        while data and not data.endswith(b"\n") and j < len(blocks):
            nxt = self._fs.read_block(blocks[j])
            nl = nxt.find(b"\n")
            if nl < 0:
                data += nxt
                j += 1
            else:
                data += nxt[: nl + 1]
                break
        text = data.decode("utf-8")
        return [line for line in text.split("\n") if line]

"""Stages for the cell-partitioned plan — no whole-tree broadcast.

The ``spark``/``spatial`` plans broadcast one kd-tree over the entire
dataset to every executor (`BroadcastModel`), which caps the scalable
dataset size at driver memory.  The ``cell`` plan replaces that model
with the MR-DBSCAN / dDBGSCAN shape (`repro.dbscan.cells`):

- `CellPartition` bins points into eps-aligned grid cells, packs whole
  cells into balanced partitions (greedy LPT over per-cell counts), and
  computes each partition's **eps-halo**: the foreign points within eps
  of one of its cells' bounding boxes.
- `LocalIndexExpand` ships each partition its `CellPayload` (owned +
  halo points) *through the RDD*, builds a kd-tree over only that
  payload on the executor, and runs `cell_local_dbscan` — the SEED
  expansion with halo points standing in for the foreign-index checks
  of the range plan.  No ``sc.broadcast`` call exists anywhere in this
  module; ``tests/pipeline/test_cell_plan.py`` pins that with the
  broadcast-nbytes telemetry.
- `CellCollect` drains the accumulator exactly like `CollectPartials`,
  whose founder sort (``members[0]``) matters most here: cell ownership
  is not contiguous, so the accumulator's partition order differs from
  the range plan's, but every partial's founder is the smallest core
  point it covers — sorting restores the global numbering order and the
  downstream union-find merge yields labels byte-identical to
  `SparkDBSCAN` (DESIGN.md §10).

The unchanged `MergePartials` + `RelabelFilter` tail completes the
plan; halo SEEDs feed the same core-seed-containment union-find.

This module is executor-path code under the SHF001 shuffle-free
contract: registering ``"cell"`` in ``SHUFFLE_FREE_PLANS`` makes these
stage classes lineage-proof entry points automatically.
"""

from __future__ import annotations

import time

import numpy as np

from ..engine import LIST_CONCAT
from ..dbscan.cells import CellAssignment, build_cell_assignment, cell_local_dbscan
from ..dbscan.partial import LocalExpansion, OpCounters, partition_digest
from .checkpoint import CheckpointStore
from .stages import CollectPartials, Stage
from .state import PipelineState


class CellPartition(Stage):
    """Grid-partition the points and plan each partition's eps-halo.

    Driver-side and index-free: the plan is pure integer bookkeeping
    (who owns which point, who additionally sees which), so it
    checkpoints as a handful of id arrays — no kd-tree artifact.
    """

    name = "CellPartition"
    requires = ("points", "n")
    provides = ("cell_assignment", "partitioner")
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        with state.tracer.span("driver.cell_partition", cat="driver") as sp:
            t0 = time.perf_counter()
            # lint: allow[SCL001] ROADMAP item 1: central driver binning
            assignment = build_cell_assignment(
                state.points, cfg.eps, cfg.num_partitions
            )
            state.timings.setup += time.perf_counter() - t0
            sp.annotate(
                num_cells=assignment.num_cells,
                halo_points=assignment.halo_points_total,
            )
        self._install(state, assignment)

    @staticmethod
    def _install(state: PipelineState, assignment) -> None:
        state.extras["cell_assignment"] = assignment
        state.partitioner = assignment.to_partitioner()

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        a = state.extras["cell_assignment"]
        arrays = {}
        for key, parts in (("owned", a.owned), ("halo", a.halo),
                           ("halo_home", a.halo_home)):
            arrays[key] = (
                np.concatenate(parts) if parts
                else np.empty(0, dtype=np.int64)
            )
            arrays[f"{key}_sizes"] = np.array(
                [len(x) for x in parts], dtype=np.int64
            )
        store.save_npz(self.name, **arrays)
        store.save_json(self.name, {
            "n": a.n,
            "num_partitions": a.num_partitions,
            "num_cells": a.num_cells,
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        arrays = store.load_npz(self.name)

        def split(key):
            flat = arrays[key].astype(np.int64)
            bounds = np.cumsum(arrays[f"{key}_sizes"].astype(np.int64))[:-1]
            return [np.ascontiguousarray(x) for x in np.split(flat, bounds)]

        assignment = CellAssignment(
            n=doc["n"],
            num_partitions=doc["num_partitions"],
            num_cells=doc["num_cells"],
            owned=split("owned"),
            halo=split("halo"),
            halo_home=split("halo_home"),
        )
        self._install(state, assignment)


class LocalIndexExpand(Stage):
    """Per-partition kd-trees over (owned + halo) points — executors
    build their own index from the RDD payload; the driver never holds
    (let alone broadcasts) a global one.
    """

    name = "LocalIndexExpand"
    requires = ("cell_assignment", "points")
    provides = ("engine", "expanded")

    def __init__(self, emit: str = "partials"):
        if emit not in ("partials", "edges"):
            raise ValueError(f"emit must be 'partials' or 'edges', got {emit!r}")
        self.emit = emit

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        assignment = state.extras["cell_assignment"]
        sc = state.ensure_context()
        with state.tracer.span("driver.setup", cat="driver") as sp:
            t0 = time.perf_counter()
            payloads = assignment.payloads(state.points)
            halo_bytes = sum(p.halo_ids.nbytes + p.halo_points.nbytes
                             for p in payloads)
            payload_bytes = sum(p.nbytes for p in payloads)
            state.indices = sc.parallelize(payloads, cfg.num_partitions)
            state.acc = sc.accumulator(LIST_CONCAT)
            state.counters_acc = (
                sc.accumulator(LIST_CONCAT)
                if state.metrics_registry is not None
                else None
            )
            state.timings.setup += time.perf_counter() - t0
            sp.annotate(halo_points=assignment.halo_points_total,
                        halo_nbytes=halo_bytes, payload_nbytes=payload_bytes)
        state.extras["halo_points"] = assignment.halo_points_total
        state.extras["halo_bytes"] = halo_bytes
        state.extras["payload_bytes"] = payload_bytes
        if state.metrics_registry is not None:
            state.metrics_registry.gauge(
                "repro_cell_halo_points",
                "Replicated eps-halo point slots across all partitions.",
            ).set(assignment.halo_points_total)
            state.metrics_registry.gauge(
                "repro_cell_halo_bytes",
                "Serialized bytes of replicated halo ids + coordinates.",
            ).set(halo_bytes)
            state.metrics_registry.gauge(
                "repro_cell_payload_bytes",
                "Serialized bytes of all cell payloads (owned + halo).",
            ).set(payload_bytes)

        eps, minpts = cfg.eps, cfg.minpts
        leaf_size, seed_policy = cfg.leaf_size, cfg.seed_policy
        max_neighbors, neighbor_mode = cfg.max_neighbors, cfg.neighbor_mode
        acc, counters_acc = state.acc, state.counters_acc
        collect_counters = counters_acc is not None
        track_boundary = self.emit == "edges"

        def expand(pid: int, it) -> LocalExpansion:
            from ..obs.collect import task_span

            counters = OpCounters() if collect_counters else None
            boundary: set[int] | None = set() if track_boundary else None
            result = []
            with task_span("task.expand", partition=pid,
                           mode=neighbor_mode) as esp:
                n_own = n_halo = 0
                for payload in it:
                    n_own += len(payload.owned_ids)
                    n_halo += len(payload.halo_ids)
                    result.extend(cell_local_dbscan(
                        payload, eps, minpts, leaf_size=leaf_size,
                        seed_policy=seed_policy, max_neighbors=max_neighbors,
                        neighbor_mode=neighbor_mode, counters=counters,
                        boundary_out=boundary,
                    ))
                if track_boundary:
                    # A partition may aggregate several payloads whose
                    # partials restart local_id at 0; renumber so the
                    # (partition, local_id) cid is unique in the digest.
                    for k, c in enumerate(result):
                        c.local_id = k
                esp.annotate(partials=len(result), n_own=n_own,
                             n_halo=n_halo)
            return LocalExpansion(
                partition=pid, partials=result,
                boundary=boundary if boundary is not None else set(),
                counters=counters,
            )

        if self.emit == "partials":

            def run_partition(pid: int, it) -> None:
                exp = expand(pid, it)
                # Partial clusters ship to the driver through the
                # accumulator as the task finishes, like the range plan.
                acc.add(exp.partials)
                if counters_acc is not None:
                    counters_acc.add([(pid, exp.counters)])

            state.indices.foreach_partition_with_index(run_partition)
        else:

            def expand_partition(pid: int, it):
                yield expand(pid, it)

            # Cached executor-side; digests ship from the foreach action
            # only, so a cache miss under processes cannot double-count.
            expanded = state.indices.map_partitions_with_index(
                expand_partition
            ).persist()
            state.extras["expanded_rdd"] = expanded

            def emit_digest(pid: int, it) -> None:
                for exp in it:
                    acc.add([partition_digest(exp)])
                    if counters_acc is not None:
                        counters_acc.add([(pid, exp.counters)])

            expanded.foreach_partition_with_index(emit_digest)

        durations = state.sc.last_job_metrics.task_durations()
        state.timings.executor_task_durations = durations
        state.timings.executor_total = sum(durations)
        state.timings.executor_max = max(durations) if durations else 0.0


class CellCollect(CollectPartials):
    """`CollectPartials`, which founder-sorts (see the module docstring).

    Cell ownership is not contiguous, so partials arrive grouped by
    partition in an order unrelated to their point ids; the founder sort
    (now the base class's canonical order, since accumulator arrival is
    completion-ordered on the parallel backends too) makes the list —
    and therefore global cluster numbering and every downstream artifact
    — deterministic and identical to the range plan's.  Kept as its own
    class so the cell plan's manifest names its collect step.
    """

    name = "CollectPartials"
    requires = ("expanded", "engine")
    provides = ("partials",)
    checkpointable = True


__all__ = ["CellCollect", "CellPartition", "LocalIndexExpand"]

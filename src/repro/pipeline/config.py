"""The one frozen configuration object every DBSCAN frontend shares.

Before the pipeline refactor each frontend re-declared (and re-validated,
inconsistently) the same ~14 keyword arguments.  `RunConfig` is the single
source of truth: every parameter of every algorithm lives here, every
invariant is checked once in ``__post_init__``, and the frontend classes
are thin shims that assemble a `RunConfig` and hand it to a
`PipelineRunner`.

`RunConfig` is also the checkpoint key.  ``content_hash()`` digests the
*semantic* fields — the ones that change the computation's output or the
artifacts a stage would write — together with a hash of the input points.
Two runs with the same content hash may share checkpoints; any semantic
change (a different ``eps``, partition count, seed policy, …) produces a
different hash and therefore a cold checkpoint directory.  Runtime-only
knobs (``master``, ``sanitize``, ``keep_partials``, ``tmp_dir``) are
deliberately excluded: they change *how* the answer is computed or what
is retained in memory, never the answer itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

import numpy as np

#: The five frontends, as pipeline plan names.
ALGORITHMS = ("spark", "spatial", "naive", "mapreduce", "sequential")

#: How points are assigned to executors.  ``"range"`` is the paper's
#: contiguous index slicing (+ a whole-tree broadcast); ``"cells"``
#: re-bases the spark plan on eps-grid cell partitions with
#: partition-local indexes and an eps-halo (DESIGN.md §10).
PARTITIONINGS = ("range", "cells")

#: Fields covered by ``content_hash`` (see module docstring for the rule).
HASHED_FIELDS = (
    "algorithm",
    "eps",
    "minpts",
    "num_partitions",
    "seed_policy",
    "merge_strategy",
    "max_neighbors",
    "min_cluster_size",
    "leaf_size",
    "neighbor_mode",
    "impl",
    "max_rounds",
    "startup_overhead",
    "partitioning",
    "merge_mode",
)


@dataclass(frozen=True)
class RunConfig:
    """Frozen parameters of one DBSCAN run, shared by all five frontends.

    Algorithm-specific fields are simply unused by plans that do not need
    them (``impl`` only matters to ``sequential``, ``max_rounds`` to
    ``naive``, ``startup_overhead``/``tmp_dir`` to ``mapreduce``); their
    defaults keep the hash stable for the other algorithms.
    """

    eps: float
    minpts: int
    algorithm: str = "spark"
    num_partitions: int = 4
    master: str | None = None
    seed_policy: str = "all"
    merge_strategy: str = "union_find"
    max_neighbors: int | None = None
    min_cluster_size: int = 0
    leaf_size: int = 64
    keep_partials: bool = False
    neighbor_mode: str = "per_point"
    partitioning: str = "range"
    #: How partial clusters reach the driver: ``"partials"`` ships whole
    #: point lists (the paper's path); ``"edges"`` ships digests and
    #: labels via a second distributed pass (DESIGN.md §11).  Labels are
    #: byte-identical; hashed because the stage list (and therefore the
    #: checkpoint artifacts) differ.
    merge_mode: str = "partials"
    sanitize: bool = False
    # Runtime-only observability knobs (like master/sanitize, excluded
    # from the content hash: they never change the answer).
    profile: bool = False
    profile_alloc: bool = False
    # sequential only
    impl: str = "array"
    # naive only
    max_rounds: int = 100
    # mapreduce only
    startup_overhead: float = 1.0
    tmp_dir: str | None = None

    def __post_init__(self) -> None:
        # Imported lazily: repro.dbscan and repro.pipeline import each
        # other at module level, and this module must stay importable
        # from either direction.
        from ..dbscan.merge import MERGE_MODES, MERGE_STRATEGIES
        from ..dbscan.partial import NEIGHBOR_MODES, SEED_POLICIES

        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.minpts < 1:
            raise ValueError(f"minpts must be >= 1, got {self.minpts}")
        if self.num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {self.num_partitions}"
            )
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(f"unknown seed_policy {self.seed_policy!r}")
        if self.merge_strategy not in MERGE_STRATEGIES:
            raise ValueError(f"unknown merge_strategy {self.merge_strategy!r}")
        if self.neighbor_mode not in NEIGHBOR_MODES:
            raise ValueError(f"unknown neighbor_mode {self.neighbor_mode!r}")
        if self.partitioning not in PARTITIONINGS:
            raise ValueError(f"unknown partitioning {self.partitioning!r}")
        if self.partitioning == "cells" and self.algorithm != "spark":
            raise ValueError(
                "partitioning='cells' re-bases the spark plan; it cannot "
                f"combine with algorithm={self.algorithm!r}"
            )
        if self.merge_mode not in MERGE_MODES:
            raise ValueError(f"unknown merge_mode {self.merge_mode!r}")
        if self.merge_mode == "edges":
            if self.algorithm not in ("spark", "spatial"):
                raise ValueError(
                    "merge_mode='edges' applies to the SEED pipelines "
                    f"(spark, spatial); algorithm={self.algorithm!r} has no "
                    "driver merge to replace"
                )
            if self.merge_strategy != "union_find":
                raise ValueError(
                    "merge_mode='edges' implements the union-find closure; "
                    f"merge_strategy={self.merge_strategy!r} is partials-only"
                )
            if self.keep_partials:
                raise ValueError(
                    "merge_mode='edges' never ships point lists to the "
                    "driver, so keep_partials=True cannot be honoured"
                )
            if self.max_neighbors is not None:
                raise ValueError(
                    "merge_mode='edges' derives merge edges from the "
                    "symmetric eps-graph; max_neighbors truncation breaks "
                    "that symmetry (use merge_mode='partials')"
                )
        if self.max_neighbors is not None and self.max_neighbors < 1:
            raise ValueError(
                f"max_neighbors must be >= 1 or None, got {self.max_neighbors}"
            )
        if self.min_cluster_size < 0:
            raise ValueError(
                f"min_cluster_size must be >= 0, got {self.min_cluster_size}"
            )
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.impl not in ("array", "hashtable"):
            raise ValueError(
                f"impl must be 'array' or 'hashtable', got {self.impl!r}"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.startup_overhead < 0:
            raise ValueError(
                f"startup_overhead must be >= 0, got {self.startup_overhead}"
            )

    @property
    def resolved_master(self) -> str:
        """Engine master URL, defaulting to the serial simulated backend."""
        return self.master or f"simulated[{self.num_partitions}]"

    def semantic_dict(self) -> dict:
        """The hashed (output-determining) fields as a plain dict."""
        return {f: getattr(self, f) for f in HASHED_FIELDS}

    def content_hash(self, points: np.ndarray | None = None) -> str:
        """Hex digest keying checkpoint compatibility.

        Covers the semantic fields plus (when given) the exact bytes of
        the input points, so a checkpoint can never be resumed against
        different data or different parameters.
        """
        payload = json.dumps(self.semantic_dict(), sort_keys=True,
                             separators=(",", ":"))
        h = hashlib.sha256(payload.encode())
        if points is not None:
            arr = np.ascontiguousarray(points, dtype=np.float64)
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """All configuration field names (shim layers forward these)."""
        return tuple(f.name for f in fields(cls))

"""Typed pipeline stages for the paper's driver sequence.

Each stage is one box of the paper's fixed driver program (Sections
IV-A–IV-C): read points, build the kd-tree, plan partitions, broadcast,
expand locally, collect partials, merge, relabel.  A stage declares the
state keys it ``requires`` and ``provides`` (see `PipelineState`); the
`PipelineRunner` wires them together, checkpoints the ones that opt in,
and — on ``--resume`` — restores a stage's outputs from disk instead of
re-running it *and everything upstream of it*.

The stage bodies are the pre-refactor frontend code, moved — not
rewritten — so every plan composition produces byte-identical labels,
partials, and OpCounters to the monolithic ``fit`` methods they replace.
The span names emitted here (``driver.kdtree_build``, ``driver.setup``,
``driver.accumulator_drain``, ``driver.merge``, ``driver.relabel``,
``driver.spatial_reorder``, ``executor.partition_expand``) are the same
vocabulary `repro.obs.TraceReport` already understands.

This module is executor-path code and lives under the SHF001
shuffle-free contract; the shuffle-based baselines get their own stage
modules (`stages_naive`, `stages_mapreduce`) outside it.
"""

from __future__ import annotations

import time

import numpy as np

from ..engine import LIST_CONCAT
from ..engine.partitioner import IndexRangePartitioner
from ..kdtree import KDTree
from ..dbscan.core import NOISE
from ..dbscan.merge import EdgeMergePlan, MergeOutcome, merge_edges, merge_partials
from ..dbscan.partial import (
    LocalExpansion,
    OpCounters,
    PartialCluster,
    PartialSummary,
    PartitionDigest,
    digest_payload_nbytes,
    local_dbscan,
    partials_payload_nbytes,
    partition_digest,
)
from ..obs.collect import task_span
from .checkpoint import CheckpointStore
from .state import PipelineState

#: Driver-collected payload size (canonical pickled bytes) of the merge
#: input — partial clusters or digests depending on ``merge_mode``.  The
#: perf gate compares it exactly, hence the canonical rendering.
COLLECT_BYTES_HELP = (
    "Canonical pickled size of the merge payload collected by the driver."
)


def _graft_executor_spans(
    state: PipelineState, partials_per: list[int], seeds_per: list[int]
) -> None:
    """Graft per-partition expansion spans onto the driver trace.

    With one partition per core (the paper's setup) their max is the
    executor wall.
    """
    for pid, dur in enumerate(state.timings.executor_task_durations):
        state.tracer.add_span(
            "executor.partition_expand", dur, cat="executor",
            tid=f"executor-{pid}", partition=pid,
            partials=partials_per[pid], seeds=seeds_per[pid],
        )


class PipelineError(Exception):
    """A plan is mis-wired (missing requires) or a stage misbehaved."""


class Stage:
    """One step of a `Plan`.

    Subclasses set ``name``/``requires``/``provides`` and implement
    ``run``.  Checkpointable stages additionally implement ``save`` and
    ``load``; ``load_requires`` lists the keys a *restore* needs (usually
    fewer than a run — e.g. restoring collected partials needs no engine).
    """

    name: str = "Stage"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    load_requires: tuple[str, ...] = ()
    checkpointable: bool = False
    always_run: bool = False

    def run(self, state: PipelineState) -> None:
        raise NotImplementedError

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        raise NotImplementedError(f"{self.name} is not checkpointable")

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        raise NotImplementedError(f"{self.name} is not checkpointable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


# ---------------------------------------------------------------------------
# shared head: points + index + partition plan
# ---------------------------------------------------------------------------

class LoadPoints(Stage):
    """Validate and normalise the caller's points (driver, Algorithm 2 l.1)."""

    name = "LoadPoints"
    provides = ("points", "n")
    always_run = True

    def run(self, state: PipelineState) -> None:
        with state.tracer.span("driver.load", cat="driver") as sp:
            points = np.ascontiguousarray(state.points, dtype=np.float64)
            if points.ndim != 2:
                raise ValueError(f"points must be 2-D, got shape {points.shape}")
            state.points = points
            state.n = int(points.shape[0])
            sp.annotate(n=state.n, d=int(points.shape[1]))


class SpatialReorder(Stage):
    """Permute points into kd-tree leaf order (the paper's future work).

    Downstream stages then see spatially-compact index ranges; the final
    `RelabelFilter` undoes the permutation so callers never observe it.
    """

    name = "SpatialReorder"
    requires = ("points",)
    provides = ("perm",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        from ..dbscan.spatial import spatial_order

        with state.tracer.span("driver.spatial_reorder", cat="driver") as sp:
            t0 = time.perf_counter()
            perm = spatial_order(state.points, leaf_size=state.config.leaf_size)
            reorder_time = time.perf_counter() - t0
            state.perm = perm
            state.points = state.points[perm]
            sp.annotate(n=state.n, leaf_size=state.config.leaf_size)
        state.timings.setup += reorder_time

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_npz(self.name, perm=state.perm)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        perm = store.load_npz(self.name)["perm"]
        state.perm = perm
        state.points = state.points[perm]


class BuildIndex(Stage):
    """Build the global kd-tree on the driver (Algorithm 2 line 2).

    A prebuilt tree lent by the caller (``fit(..., tree=...)``) short-
    circuits the build, mirroring the pre-refactor fast path used by the
    scaling benchmarks.
    """

    name = "BuildIndex"
    requires = ("points",)
    provides = ("tree",)

    def __init__(self, requires: tuple[str, ...] | None = None):
        if requires is not None:
            self.requires = requires

    def run(self, state: PipelineState) -> None:
        if state.tree is not None:
            return
        with state.tracer.span("driver.kdtree_build", cat="driver") as sp:
            t0 = time.perf_counter()
            state.tree = KDTree(state.points, leaf_size=state.config.leaf_size)
            state.timings.kdtree_build = time.perf_counter() - t0
            sp.annotate(n=state.n, leaf_size=state.config.leaf_size)


class PartitionPlan(Stage):
    """Slice the index space into contiguous executor ranges (line 3)."""

    name = "PartitionPlan"
    requires = ("n",)
    provides = ("partitioner",)

    def run(self, state: PipelineState) -> None:
        state.partitioner = IndexRangePartitioner(
            state.n, state.config.num_partitions
        )


# ---------------------------------------------------------------------------
# the SEED pipeline body (Algorithm 2)
# ---------------------------------------------------------------------------

class BroadcastModel(Stage):
    """Broadcast the tree, parallelize indices, create accumulators.

    The only stage that *creates* engine objects; plans whose downstream
    stages are all restored from checkpoints skip it, and the resumed run
    finishes without ever starting a SparkContext.
    """

    name = "BroadcastModel"
    requires = ("tree", "n")
    provides = ("engine",)

    def run(self, state: PipelineState) -> None:
        sc = state.ensure_context()
        with state.tracer.span("driver.setup", cat="driver"):
            t0 = time.perf_counter()
            state.tree_b = sc.broadcast(state.tree)
            state.indices = sc.parallelize(
                range(state.n), state.config.num_partitions
            )
            state.acc = sc.accumulator(LIST_CONCAT)
            state.counters_acc = (
                sc.accumulator(LIST_CONCAT)
                if state.metrics_registry is not None
                else None
            )
            state.timings.setup += time.perf_counter() - t0


class LocalExpand(Stage):
    """Run local DBSCAN with SEED placement on every partition (ll. 4-29).

    ``emit="partials"`` (default) ships whole partial clusters through
    the accumulator.  ``emit="edges"`` keeps the expansion cached in the
    lineage and ships only each partition's `PartitionDigest`
    (DESIGN.md §11); `ApplyGidMap` later reuses the cached expansion —
    or deterministically recomputes it on a cache miss under the
    processes backend — to label members executor-side.
    """

    name = "LocalExpand"
    requires = ("engine", "partitioner")
    provides = ("expanded",)

    def __init__(self, emit: str = "partials"):
        if emit not in ("partials", "edges"):
            raise ValueError(f"emit must be 'partials' or 'edges', got {emit!r}")
        self.emit = emit

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        partitioner = state.partitioner
        eps, minpts = cfg.eps, cfg.minpts
        seed_policy, max_neighbors = cfg.seed_policy, cfg.max_neighbors
        neighbor_mode = cfg.neighbor_mode
        tree_b, acc, counters_acc = state.tree_b, state.acc, state.counters_acc
        collect_counters = counters_acc is not None
        track_boundary = self.emit == "edges"

        def expand(pid: int, it) -> LocalExpansion:
            # Worker sub-phase spans: no-ops unless the run collects
            # telemetry, merged into the driver trace either way.
            with task_span("task.broadcast_fetch", partition=pid) as bsp:
                t = tree_b.value
                bsp.annotate(n=len(t.points))
            counters = OpCounters() if collect_counters else None
            boundary: set[int] | None = set() if track_boundary else None
            with task_span(
                "task.expand", partition=pid, mode=neighbor_mode,
            ) as esp:
                result = local_dbscan(
                    pid, it, t.points, t, eps, minpts, partitioner,
                    seed_policy=seed_policy, max_neighbors=max_neighbors,
                    neighbor_mode=neighbor_mode, counters=counters,
                    boundary_out=boundary,
                )
                esp.annotate(partials=len(result))
            return LocalExpansion(
                partition=pid, partials=result,
                boundary=boundary if boundary is not None else set(),
                counters=counters,
            )

        if self.emit == "partials":

            def run_partition(pid: int, it) -> None:
                exp = expand(pid, it)
                # Algorithm 2 lines 26-28: ship partial clusters to the
                # driver through the accumulator as the task finishes.
                acc.add(exp.partials)
                if counters_acc is not None:
                    counters_acc.add([(pid, exp.counters)])

            state.indices.foreach_partition_with_index(run_partition)
        else:

            def expand_partition(pid: int, it):
                yield expand(pid, it)

            # Cached executor-side; the digest job below and ApplyGidMap
            # both consume it.  Counters/digests are shipped only from the
            # foreach action so a job-2 cache miss cannot double-count.
            expanded = state.indices.map_partitions_with_index(
                expand_partition
            ).persist()
            state.extras["expanded_rdd"] = expanded

            def emit_digest(pid: int, it) -> None:
                for exp in it:
                    acc.add([partition_digest(exp)])
                    if counters_acc is not None:
                        counters_acc.add([(pid, exp.counters)])

            expanded.foreach_partition_with_index(emit_digest)

        durations = state.sc.last_job_metrics.task_durations()
        state.timings.executor_task_durations = durations
        state.timings.executor_total = sum(durations)
        state.timings.executor_max = max(durations) if durations else 0.0


class CollectPartials(Stage):
    """Drain the accumulator: partial clusters (and OpCounters) to driver.

    The collected list is founder-sorted (by ``members[0]``, globally
    unique) into a canonical order: accumulator merge order follows task
    *completion* under the threads/processes backends, and gid numbering
    downstream must not depend on which executor finished first.
    """

    name = "CollectPartials"
    requires = ("expanded", "engine")
    provides = ("partials",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        tracer = state.tracer
        with tracer.span("driver.accumulator_drain", cat="driver") as sp:
            partials = list(state.acc.value)
            partials.sort(key=lambda c: c.members[0])
            sp.annotate(num_partials=len(partials))
            if state.metrics_registry is not None:
                nbytes = partials_payload_nbytes(partials)
                state.metrics_registry.gauge(
                    "repro_driver_collect_bytes", COLLECT_BYTES_HELP
                ).set(nbytes)
                sp.annotate(collect_bytes=nbytes)
        state.partials = partials

        if tracer.enabled:
            num_partitions = state.config.num_partitions
            partials_per = [0] * num_partitions
            seeds_per = [0] * num_partitions
            for c in partials:
                partials_per[c.partition] += 1
                seeds_per[c.partition] += len(c.seeds)
            _graft_executor_spans(state, partials_per, seeds_per)
        state.counters = (
            list(state.counters_acc.value)
            if state.counters_acc is not None else None
        )
        self._record_counters(state)

    @staticmethod
    def _record_counters(state: PipelineState) -> None:
        if state.counters is None or state.metrics_registry is None:
            return
        from ..obs.registry import record_op_counters

        for pid, oc in state.counters:
            record_op_counters(state.metrics_registry, oc, partition=pid)

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_json(self.name, {
            "n": state.n,
            "partials": [
                {
                    "partition": c.partition,
                    "local_id": c.local_id,
                    "lo": c.lo,
                    "hi": c.hi,
                    "members": c.members,
                    "seeds": c.seeds,
                    "borders": sorted(c.borders),
                    "status": c.status,
                }
                for c in state.partials
            ],
            "counters": None if state.counters is None else [
                [pid, vars(oc)] for pid, oc in state.counters
            ],
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        state.partials = [
            PartialCluster(
                partition=d["partition"], local_id=d["local_id"],
                lo=d["lo"], hi=d["hi"], members=list(d["members"]),
                seeds=list(d["seeds"]), borders=set(d["borders"]),
                status=d["status"],
            )
            for d in doc["partials"]
        ]
        state.counters = (
            None if doc["counters"] is None
            else [(pid, OpCounters(**c)) for pid, c in doc["counters"]]
        )
        self._record_counters(state)


class MergePartials(Stage):
    """Dig SEEDs and merge partial clusters on the driver (Algorithm 4)."""

    name = "MergePartials"
    requires = ("partials", "n")
    provides = ("outcome",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        partials = state.partials
        with state.tracer.span("driver.merge", cat="driver") as sp:
            t0 = time.perf_counter()
            outcome = merge_partials(
                partials,
                state.n,
                strategy=cfg.merge_strategy,
                min_cluster_size=cfg.min_cluster_size,
            )
            state.timings.driver_merge = time.perf_counter() - t0
            sp.annotate(
                strategy=cfg.merge_strategy,
                num_partials=len(partials),
                num_seeds=sum(len(c.seeds) for c in partials),
                num_merges=outcome.num_merges,
                num_global_clusters=outcome.num_global_clusters,
                overlapping_points=outcome.overlapping_points,
            )
        state.outcome = outcome
        if state.metrics_registry is not None:
            from ..obs.registry import record_merge_outcome

            record_merge_outcome(
                state.metrics_registry, outcome.num_merges,
                outcome.num_global_clusters, outcome.overlapping_points,
            )

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        o = state.outcome
        store.save_npz(self.name, labels=o.labels)
        store.save_json(self.name, {
            "num_merges": o.num_merges,
            "num_global_clusters": o.num_global_clusters,
            "overlapping_points": o.overlapping_points,
            "groups": o.groups,
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        stats = store.load_json(self.name)
        labels = store.load_npz(self.name)["labels"].astype(np.int64)
        state.outcome = MergeOutcome(
            labels=labels,
            num_merges=stats["num_merges"],
            num_global_clusters=stats["num_global_clusters"],
            overlapping_points=stats["overlapping_points"],
            groups=[list(g) for g in stats["groups"]],
        )


# ---------------------------------------------------------------------------
# edge-based merge tail (merge_mode="edges", DESIGN.md §11)
# ---------------------------------------------------------------------------

class CollectEdges(Stage):
    """Drain the accumulator: partition digests (and OpCounters) to driver.

    O(edges + partials) bytes cross to the driver — summaries, seed
    half-edges, and boundary exports — never the member point lists,
    which stay cached executor-side for `ApplyGidMap`.
    """

    name = "CollectEdges"
    requires = ("expanded", "engine")
    provides = ("digest",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        tracer = state.tracer
        with tracer.span("driver.accumulator_drain", cat="driver") as sp:
            digests = list(state.acc.value)
            digests.sort(key=lambda d: d.partition)
            sp.annotate(
                num_digests=len(digests),
                num_partials=sum(len(d.summaries) for d in digests),
            )
            if state.metrics_registry is not None:
                nbytes = digest_payload_nbytes(digests)
                state.metrics_registry.gauge(
                    "repro_driver_collect_bytes", COLLECT_BYTES_HELP
                ).set(nbytes)
                sp.annotate(collect_bytes=nbytes)
        state.extras["digest"] = digests

        if tracer.enabled:
            num_partitions = state.config.num_partitions
            partials_per = [0] * num_partitions
            seeds_per = [0] * num_partitions
            for d in digests:
                partials_per[d.partition] += len(d.summaries)
                seeds_per[d.partition] += sum(len(ss) for ss in d.seeds)
            _graft_executor_spans(state, partials_per, seeds_per)
        state.counters = (
            list(state.counters_acc.value)
            if state.counters_acc is not None else None
        )
        CollectPartials._record_counters(state)

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_json(self.name, {
            "n": state.n,
            "digests": [
                {
                    "partition": d.partition,
                    "summaries": [
                        [s.partition, s.local_id, s.founder, s.n_members,
                         s.n_seeds, s.n_borders]
                        for s in d.summaries
                    ],
                    "seeds": d.seeds,
                    "exports": [[p, l, bool(core)] for p, l, core in d.exports],
                }
                for d in state.extras["digest"]
            ],
            "counters": None if state.counters is None else [
                [pid, vars(oc)] for pid, oc in state.counters
            ],
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        state.extras["digest"] = [
            PartitionDigest(
                partition=d["partition"],
                summaries=[
                    PartialSummary(partition=p, local_id=l, founder=f,
                                   n_members=m, n_seeds=s, n_borders=b)
                    for p, l, f, m, s, b in d["summaries"]
                ],
                seeds=[list(ss) for ss in d["seeds"]],
                exports=[(p, l, bool(core)) for p, l, core in d["exports"]],
            )
            for d in doc["digests"]
        ]
        state.counters = (
            None if doc["counters"] is None
            else [(pid, OpCounters(**c)) for pid, c in doc["counters"]]
        )
        CollectPartials._record_counters(state)


class MergeEdges(Stage):
    """Union-find over cluster keys on the driver: O(edges + partials)."""

    name = "MergeEdges"
    requires = ("digest",)
    provides = ("merge_plan",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        digests = state.extras["digest"]
        with state.tracer.span("driver.merge", cat="driver") as sp:
            t0 = time.perf_counter()
            plan = merge_edges(
                digests, min_cluster_size=cfg.min_cluster_size
            )
            state.timings.driver_merge = time.perf_counter() - t0
            sp.annotate(
                strategy=cfg.merge_strategy,
                merge_mode="edges",
                num_partials=plan.num_partials,
                num_seeds=plan.num_seeds,
                num_edges=plan.num_edges,
                num_merges=plan.num_merges,
                num_global_clusters=plan.num_global_clusters,
                overlapping_points=0,
            )
        self._install(state, plan)
        if state.metrics_registry is not None:
            from ..obs.registry import record_merge_outcome

            state.metrics_registry.counter(
                "repro_merge_edges_total",
                "Core seed/export half-edge joins walked by the edge merge.",
            ).inc(plan.num_edges)
            record_merge_outcome(
                state.metrics_registry, plan.num_merges,
                plan.num_global_clusters, 0,
            )

    @staticmethod
    def _install(state: PipelineState, plan: EdgeMergePlan) -> None:
        state.extras["merge_plan"] = plan
        # The result object's partial-cluster counts, without the partials.
        state.extras["num_partials"] = plan.num_partials
        state.extras["num_seeds"] = plan.num_seeds

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        plan = state.extras["merge_plan"]
        store.save_json(self.name, {
            "gid_of": [[p, l, g] for (p, l), g in sorted(plan.gid_of.items())],
            "claims": [[s, g] for s, g in sorted(plan.claims.items())],
            "num_partials": plan.num_partials,
            "num_seeds": plan.num_seeds,
            "num_edges": plan.num_edges,
            "num_merges": plan.num_merges,
            "num_global_clusters": plan.num_global_clusters,
            "groups": plan.groups,
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        plan = EdgeMergePlan(
            gid_of={(p, l): g for p, l, g in doc["gid_of"]},
            claims={s: g for s, g in doc["claims"]},
            num_partials=doc["num_partials"],
            num_seeds=doc["num_seeds"],
            num_edges=doc["num_edges"],
            num_merges=doc["num_merges"],
            num_global_clusters=doc["num_global_clusters"],
            groups=[list(g) for g in doc["groups"]],
        )
        self._install(state, plan)


class ApplyGidMap(Stage):
    """Second distributed pass: label members executor-side via the
    broadcast ``local_cid → gid`` map; the driver assembles per-cluster
    ``(member ids, gid)`` chunks and applies the O(boundary) claims dict.

    Under the processes backend a fresh worker misses the job-1 cache and
    recomputes the expansion through the lineage — deterministically, so
    the digest it was merged under still describes it exactly.
    """

    name = "ApplyGidMap"
    requires = ("merge_plan", "expanded", "engine", "n")
    provides = ("outcome",)
    # A restore rebuilds the outcome from saved labels alone — no engine,
    # so a fully-restored run never starts a SparkContext.
    load_requires = ()
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        plan: EdgeMergePlan = state.extras["merge_plan"]
        expanded = state.extras["expanded_rdd"]
        sc = state.sc
        try:
            with state.tracer.span("driver.apply_labels", cat="driver") as sp:
                t0 = time.perf_counter()
                gid_b = sc.broadcast(dict(plan.gid_of))
                label_acc = sc.accumulator(LIST_CONCAT)

                def apply_partition(pid: int, it) -> None:
                    gid_of = gid_b.value
                    chunks = []
                    for exp in it:
                        for c in exp.partials:
                            gid = gid_of.get((c.partition, c.local_id))
                            if gid is not None and c.members:
                                chunks.append(
                                    (np.asarray(c.members, dtype=np.int64),
                                     gid)
                                )
                    label_acc.add(chunks)

                expanded.foreach_partition_with_index(apply_partition)
                labels = np.full(state.n, NOISE, dtype=np.int64)
                for ids, gid in label_acc.value:
                    labels[ids] = gid
                if plan.claims:
                    claim_ids = np.fromiter(
                        plan.claims.keys(), dtype=np.int64,
                        count=len(plan.claims),
                    )
                    claim_gids = np.fromiter(
                        plan.claims.values(), dtype=np.int64,
                        count=len(plan.claims),
                    )
                    labels[claim_ids] = claim_gids
                state.timings.driver_merge += time.perf_counter() - t0
                sp.annotate(
                    num_labelled_partials=len(plan.gid_of),
                    num_claims=len(plan.claims),
                )
        finally:
            expanded.unpersist()
        state.outcome = MergeOutcome(
            labels=labels,
            num_merges=plan.num_merges,
            num_global_clusters=plan.num_global_clusters,
            overlapping_points=0,
            groups=[list(g) for g in plan.groups],
        )

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        o = state.outcome
        store.save_npz(self.name, labels=o.labels)
        store.save_json(self.name, {
            "num_merges": o.num_merges,
            "num_global_clusters": o.num_global_clusters,
            "overlapping_points": o.overlapping_points,
            "groups": o.groups,
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        stats = store.load_json(self.name)
        labels = store.load_npz(self.name)["labels"].astype(np.int64)
        state.outcome = MergeOutcome(
            labels=labels,
            num_merges=stats["num_merges"],
            num_global_clusters=stats["num_global_clusters"],
            overlapping_points=stats["overlapping_points"],
            groups=[list(g) for g in stats["groups"]],
        )


class RelabelFilter(Stage):
    """Finalise labels: undo any spatial permutation, remap kept partials.

    For the plain (index-partitioned) plans this is the identity tail;
    for the spatial plan it is the pre-refactor ``driver.relabel`` step.
    """

    name = "RelabelFilter"
    requires = ("outcome",)
    provides = ("labels",)
    checkpointable = True

    def __init__(self, spatial: bool = False, keep_partials: bool = False):
        self.spatial = spatial
        if spatial:
            self.requires = ("outcome", "perm")
            self.load_requires = ("perm", "partials") if keep_partials \
                else ("perm",)
            if keep_partials:
                self.requires = self.requires + ("partials",)

    def run(self, state: PipelineState) -> None:
        if not self.spatial:
            state.labels = state.outcome.labels
            return
        perm = state.perm
        with state.tracer.span("driver.relabel", cat="driver"):
            # Undo the permutation: reordered[k] is original point perm[k].
            labels = np.empty_like(state.outcome.labels)
            labels[perm] = state.outcome.labels
            state.labels = labels
            if state.config.keep_partials and state.partials is not None:
                self._remap_partials(state.partials, perm)

    @staticmethod
    def _remap_partials(partials: list[PartialCluster], perm: np.ndarray) -> None:
        for c in partials:
            c.members = [int(perm[m]) for m in c.members]
            c.seeds = [int(perm[s]) for s in c.seeds]
            c.borders = {int(perm[b]) for b in c.borders}

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_npz(self.name, labels=state.labels)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        state.labels = store.load_npz(self.name)["labels"].astype(np.int64)
        if self.spatial and state.config.keep_partials \
                and state.partials is not None:
            # Restored partials are in reordered space; put them back in
            # caller order exactly as a live relabel would have.
            self._remap_partials(state.partials, state.perm)


# ---------------------------------------------------------------------------
# degenerate single-partition plan (Algorithm 1)
# ---------------------------------------------------------------------------

class SequentialExpand(Stage):
    """Classic DBSCAN as a single executor-less expansion over all points."""

    name = "SequentialExpand"
    requires = ("points", "tree")
    provides = ("labels",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        # Imported lazily: repro.dbscan.sequential is itself a thin shim
        # over this pipeline, so a module-level import would be circular.
        from ..dbscan.sequential import _dbscan_array, _dbscan_hashtable

        cfg = state.config
        points, tree = state.points, state.tree
        with state.tracer.span(
            "executor.partition_expand", cat="executor", tid="executor-0",
            partition=0, impl=cfg.impl, mode=cfg.neighbor_mode,
        ):
            if cfg.neighbor_mode == "batched":
                indptr, indices = tree.query_radius_batch(
                    points, cfg.eps, cfg.max_neighbors
                )

                def neigh_of(j: int) -> np.ndarray:
                    return indices[indptr[j]:indptr[j + 1]]
            else:
                query = tree.query_radius

                def neigh_of(j: int) -> np.ndarray:
                    return query(points[j], cfg.eps, cfg.max_neighbors)

            if cfg.impl == "array":
                state.labels = _dbscan_array(state.n, cfg.minpts, neigh_of)
            else:
                state.labels = _dbscan_hashtable(state.n, cfg.minpts, neigh_of)

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_npz(self.name, labels=state.labels)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        state.labels = store.load_npz(self.name)["labels"].astype(np.int64)


__all__ = [
    "Stage",
    "PipelineError",
    "LoadPoints",
    "SpatialReorder",
    "BuildIndex",
    "PartitionPlan",
    "BroadcastModel",
    "LocalExpand",
    "CollectPartials",
    "MergePartials",
    "CollectEdges",
    "MergeEdges",
    "ApplyGidMap",
    "RelabelFilter",
    "SequentialExpand",
]

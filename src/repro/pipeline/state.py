"""Mutable state threaded through a pipeline run.

Stages communicate exclusively through this object: each `Stage` declares
the keys it ``requires`` and ``provides``, the `PipelineRunner` checks the
contract, and checkpoint restore works by repopulating the same keys from
disk instead of running the stage.  Keys are ordinary attributes; the
``present`` set records which have been established so far (a stage's
output may legitimately be ``None`` — e.g. no counters collected — so
presence cannot be inferred from the value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..dbscan.core import Timings

if TYPE_CHECKING:  # pragma: no cover - hints only
    import numpy as np

    from ..engine import SparkContext
    from ..kdtree import KDTree
    from ..obs.registry import MetricsRegistry
    from ..obs.spans import Tracer
    from .config import RunConfig


@dataclass
class PipelineState:
    """Everything a plan's stages read and write.

    ``extras`` is the annex for plan-specific outputs (naive shuffle
    accounting, MapReduce job stats, …) so the core attribute set stays
    the paper pipeline's vocabulary.
    """

    config: "RunConfig"
    tracer: "Tracer"
    metrics_registry: Any = None

    # data
    points: "np.ndarray | None" = None
    n: int = 0
    perm: "np.ndarray | None" = None        # spatial reordering, if any

    # model / plan
    tree: "KDTree | None" = None
    partitioner: Any = None

    # engine
    sc: "SparkContext | None" = None
    own_sc: bool = False
    tree_b: Any = None                       # broadcast handle
    indices: Any = None                      # RDD of point indices
    acc: Any = None                          # partials accumulator
    counters_acc: Any = None                 # OpCounters accumulator

    # outputs
    partials: list | None = None
    counters: list | None = None             # [(partition, OpCounters)]
    outcome: Any = None                      # MergeOutcome
    labels: "np.ndarray | None" = None
    timings: Timings = field(default_factory=Timings)
    extras: dict[str, Any] = field(default_factory=dict)

    # bookkeeping
    present: set[str] = field(default_factory=set)
    stage_status: dict[str, str] = field(default_factory=dict)

    def mark(self, *keys: str) -> None:
        """Record that the given state keys are now established."""
        self.present.update(keys)

    def has(self, key: str) -> bool:
        """True iff a stage has established the given key."""
        return key in self.present

    def ensure_context(self) -> "SparkContext":
        """Create (and own) an engine context unless the caller lent one.

        Plans that restore all engine-dependent stages from checkpoints
        never call this, so a resumed run can finish without ever
        spinning up the engine.
        """
        if self.sc is None:
            from ..engine import SparkContext

            self.sc = SparkContext(
                self.config.resolved_master,
                app_name=f"{self.config.algorithm}-dbscan",
                tracer=self.tracer,
                metrics_registry=self.metrics_registry,
                sanitize=self.config.sanitize,
                profile=self.config.profile,
                profile_alloc=self.config.profile_alloc,
            )
            self.own_sc = True
        return self.sc

"""Per-stage checkpoint artifacts under ``--checkpoint-dir``.

Layout::

    <checkpoint-dir>/
      <run-key>/                 # RunConfig.content_hash(points), truncated
        manifest.json            # config summary + completed stages
        CollectPartials.json     # one or two artifact files per stage
        MergePartials.npz
        MergePartials.json
        ...

The run key embeds both the semantic configuration and the input data
(see `RunConfig.content_hash`), so "is this checkpoint compatible?" is a
directory lookup: a changed ``eps`` or different points land in a fresh,
empty run directory and every stage re-runs.  The manifest only lists
stages whose artifacts were *completely* written (files first, manifest
updated last, atomically via rename), so a crash mid-write can never
produce a resumable-but-corrupt stage.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np


class CheckpointError(Exception):
    """A checkpoint directory is unreadable or internally inconsistent."""


class CheckpointStore:
    """Artifact store for one (config, data) run key."""

    MANIFEST = "manifest.json"

    def __init__(self, root: str, run_key: str, config_summary: dict | None = None):
        self.root = root
        self.run_key = run_key
        self.dir = os.path.join(root, run_key[:32])
        self._config_summary = config_summary or {}
        self._stages: dict[str, dict[str, Any]] = {}
        self._pending: dict[str, list[str]] = {}
        os.makedirs(self.dir, exist_ok=True)
        self._load_manifest()

    # -- manifest -------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.dir, self.MANIFEST)

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            return
        try:
            with open(path) as f:
                manifest = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable manifest {path!r}: {exc}") from exc
        if manifest.get("run_key") != self.run_key:
            # A truncated-key collision or a hand-edited directory; treat
            # as cold rather than resuming someone else's artifacts.
            return
        self._stages = manifest.get("stages", {})

    def _write_manifest(self) -> None:
        manifest = {
            "run_key": self.run_key,
            "config": self._config_summary,
            "stages": self._stages,
        }
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
        os.replace(tmp, self._manifest_path())

    # -- queries --------------------------------------------------------------
    def has(self, stage: str) -> bool:
        """True iff the stage completed and all its artifact files exist."""
        entry = self._stages.get(stage)
        if not entry:
            return False
        return all(
            os.path.exists(os.path.join(self.dir, name))
            for name in entry.get("files", [])
        )

    def completed_stages(self) -> list[str]:
        """Names of stages with complete artifacts, manifest order."""
        return [s for s in self._stages if self.has(s)]

    # -- artifact io ----------------------------------------------------------
    def _record(self, stage: str, filename: str) -> None:
        self._pending.setdefault(stage, [])
        if filename not in self._pending[stage]:
            self._pending[stage].append(filename)

    def save_json(self, stage: str, obj: Any) -> None:
        """Write the stage's JSON artifact (atomic)."""
        name = f"{stage}.json"
        tmp = os.path.join(self.dir, name + ".tmp")
        with open(tmp, "w") as f:
            json.dump(obj, f, separators=(",", ":"))
        os.replace(tmp, os.path.join(self.dir, name))
        self._record(stage, name)

    def load_json(self, stage: str) -> Any:
        """Read the stage's JSON artifact."""
        path = os.path.join(self.dir, f"{stage}.json")
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable artifact {path!r}: {exc}") from exc

    def save_npz(self, stage: str, **arrays: np.ndarray) -> None:
        """Write the stage's array artifact (atomic)."""
        name = f"{stage}.npz"
        tmp = os.path.join(self.dir, name + ".tmp")
        with open(tmp, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, os.path.join(self.dir, name))
        self._record(stage, name)

    def load_npz(self, stage: str) -> dict[str, np.ndarray]:
        """Read the stage's array artifact."""
        path = os.path.join(self.dir, f"{stage}.npz")
        try:
            with np.load(path) as data:
                return {k: data[k] for k in data.files}
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable artifact {path!r}: {exc}") from exc

    def complete(self, stage: str) -> None:
        """Commit the stage: record its files in the manifest, atomically.

        Only now does the stage become visible to ``has``/resume; a crash
        before this point leaves at most orphaned ``.tmp``/artifact files
        that the next run overwrites.
        """
        self._stages[stage] = {"files": self._pending.pop(stage, [])}
        self._write_manifest()

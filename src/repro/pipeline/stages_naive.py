"""Alternate stages for the shuffle-based naive baseline.

The naive frontend exists to give the SEED design a measurable opponent
(DESIGN.md §3): iterative min-label propagation where **every round is a
shuffle**.  Its plan swaps the SEED pipeline's expand/collect/merge body
for a single `ShuffleExpand` stage plus a label-assembly tail.

Kept outside `pipeline/stages.py` on purpose: that module is under the
SHF001 shuffle-free lint contract, and this one calls ``reduce_by_key``
in nearly every line.
"""

from __future__ import annotations

import numpy as np

from ..dbscan.core import NOISE
from .checkpoint import CheckpointStore
from .stages import Stage
from .state import PipelineState


class ShuffleExpand(Stage):
    """Core-graph min-label propagation, one shuffle per round.

    Produces the converged core-point labelling plus the border claims
    (``state.extras``: ``naive_labels``, ``naive_border``,
    ``shuffle_rounds``, ``shuffle_bytes``) — everything the relabel tail
    needs to assemble final labels.
    """

    name = "ShuffleExpand"
    requires = ("tree", "n")
    provides = ("propagated",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        tracer = state.tracer
        n = state.n
        sc = state.ensure_context()
        eps, minpts = cfg.eps, cfg.minpts
        rounds = 0
        tree_b = sc.broadcast(state.tree)

        # Pass 1 (no shuffle yet): core flags + adjacency edges.
        def neighbourhoods(it):
            t = tree_b.value
            for i in it:
                neigh = t.query_radius(t.points[i], eps)
                yield (i, neigh.tolist(), len(neigh) >= minpts)

        info = sc.parallelize(range(n), cfg.num_partitions).map_partitions(
            neighbourhoods
        )
        # Both cached RDDs are unpersisted on every exit path (RES001):
        # the context outlives this stage, so leaked cache entries would
        # stay resident in the block manager for the whole run.
        info.cache()
        try:
            core_flags = dict(info.map(lambda rec: (rec[0], rec[2])).collect())
            core_b = sc.broadcast(core_flags)

            # Core-graph edges, both directions between core points.
            def core_edges(rec):
                i, neigh, is_core = rec
                if not is_core:
                    return []
                flags = core_b.value
                return [(j, i) for j in neigh if flags[j]]

            edges = info.flat_map(core_edges)
            edges.cache()
            try:
                # labels: every core point starts in its own cluster.
                labels = {i: i for i in range(n) if core_flags[i]}

                # Iterative min-label propagation; each round shuffles.
                for _ in range(cfg.max_rounds):
                    rounds += 1
                    with tracer.span(
                        "naive.propagation_round", round=rounds
                    ) as round_sp:
                        lab_b = sc.broadcast(labels)
                        new_pairs = (
                            edges.map(lambda e: (e[1], lab_b.value[e[0]]))
                            .reduce_by_key(min, cfg.num_partitions)
                            .collect()
                        )
                        changed = 0
                        for i, incoming in new_pairs:
                            if incoming < labels[i]:
                                labels[i] = incoming
                                changed += 1
                        round_sp.annotate(changed=changed)
                    if changed == 0:
                        break
            finally:
                edges.unpersist()

            # Border assignment: non-core point takes the min label among
            # adjacent core points (one more shuffled pass).
            lab_b = sc.broadcast(labels)

            def border_claims(rec):
                i, neigh, is_core = rec
                if is_core:
                    return []
                cores = [lab_b.value[j] for j in neigh if j in lab_b.value]
                return [(i, min(cores))] if cores else []

            border = dict(
                info.flat_map(border_claims)
                .reduce_by_key(min, cfg.num_partitions)
                .collect()
            )
        finally:
            info.unpersist()
        rounds += 1
        shuffle_bytes = sum(
            tm.shuffle_bytes_written
            for jm in sc.dag_scheduler.job_metrics
            for st in jm.stages
            for tm in st.task_metrics
        )
        state.extras["naive_labels"] = labels
        state.extras["naive_border"] = border
        state.extras["shuffle_rounds"] = rounds
        state.extras["shuffle_bytes"] = shuffle_bytes

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_json(self.name, {
            "labels": sorted(state.extras["naive_labels"].items()),
            "border": sorted(state.extras["naive_border"].items()),
            "shuffle_rounds": state.extras["shuffle_rounds"],
            "shuffle_bytes": state.extras["shuffle_bytes"],
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        state.extras["naive_labels"] = {int(i): int(v) for i, v in doc["labels"]}
        state.extras["naive_border"] = {int(i): int(v) for i, v in doc["border"]}
        state.extras["shuffle_rounds"] = doc["shuffle_rounds"]
        state.extras["shuffle_bytes"] = doc["shuffle_bytes"]


class NaiveRelabel(Stage):
    """Assemble the final label array from core labels and border claims."""

    name = "RelabelFilter"
    requires = ("propagated", "n")
    provides = ("labels",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        labels = state.extras["naive_labels"]
        border = state.extras["naive_border"]
        out = np.full(state.n, NOISE, dtype=np.int64)
        remap: dict[int, int] = {}
        for i, lab in labels.items():
            out[i] = remap.setdefault(lab, len(remap))
        for i, lab in border.items():
            out[i] = remap[lab] if lab in remap else NOISE
        state.labels = out

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_npz(self.name, labels=state.labels)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        state.labels = store.load_npz(self.name)["labels"].astype(np.int64)

"""The driver loop that executes a `Plan`.

One runner replaces the five hand-rolled ``fit`` bodies.  It owns the
cross-cutting concerns the frontends used to re-thread individually:

- **tracing/metrics** — one ``pipeline.stage`` span per stage (status
  ``run``/``restored``) around the stage's own legacy spans, plus
  checkpoint hit/miss counters in the metrics registry;
- **engine lifecycle** — a lent `SparkContext` is reused (and its tracer
  adopted), an owned one is stopped in ``finally``;
- **checkpoint/resume** — checkpointable stages persist their outputs
  under ``checkpoint_dir`` keyed by `RunConfig.content_hash`; with
  ``resume=True`` a completed stage is restored from disk and every
  upstream stage whose outputs are no longer needed is skipped outright
  (a resumed merge never rebuilds the tree or starts the engine).

The skip logic is a backward pass over the plan: starting from the
plan's declared ``outputs``, a stage must execute only if it provides a
key some later executing stage (or the caller) still needs; a stage with
a valid checkpoint satisfies its keys from disk instead.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs.spans import NULL_TRACER, Tracer
from .checkpoint import CheckpointStore
from .config import RunConfig
from .plans import Plan
from .stages import PipelineError, Stage
from .state import PipelineState

#: Per-stage execution decisions, recorded in ``state.stage_status``.
RUN, RESTORED, SKIPPED = "run", "restored", "skipped"


class PipelineCrash(RuntimeError):
    """Injected mid-pipeline failure (the crash half of crash/resume tests)."""


class PipelineRunner:
    """Execute a `Plan` under a single `RunConfig`."""

    def __init__(
        self,
        plan: Plan,
        config: RunConfig,
        *,
        tracer: Tracer | None = None,
        metrics_registry=None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fail_after: str | None = None,
    ):
        if fail_after is not None and fail_after not in plan.stage_names():
            raise ValueError(
                f"fail_after names unknown stage {fail_after!r}; "
                f"plan stages are {plan.stage_names()}"
            )
        self.plan = plan
        self.config = config
        self.tracer = tracer or NULL_TRACER
        self.metrics_registry = metrics_registry
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.fail_after = fail_after

    # -- public api -----------------------------------------------------------
    def run(
        self,
        points: np.ndarray,
        sc=None,
        tree=None,
        algo_label: str | None = None,
    ) -> PipelineState:
        """Execute the plan; returns the final `PipelineState`.

        ``sc`` lends an engine context (it is reused, never stopped);
        ``tree`` lends a prebuilt kd-tree to `BuildIndex`.
        """
        tracer = self.tracer
        # When run inside a caller's traced SparkContext, adopt its tracer
        # so algorithm and engine spans land in one trace.
        if not tracer.enabled and sc is not None and sc.tracer.enabled:
            tracer = sc.tracer
        state = PipelineState(
            config=self.config, tracer=tracer,
            metrics_registry=self.metrics_registry,
        )
        state.points = points
        state.sc = sc
        state.tree = tree

        wall_start = time.perf_counter()
        try:
            with tracer.span(
                "dbscan.fit",
                algorithm=algo_label or self.plan.algo_label,
                n=int(np.asarray(points).shape[0]),
                partitions=self.config.num_partitions,
                eps=self.config.eps,
                minpts=self.config.minpts,
            ):
                self._execute(state)
        finally:
            if state.own_sc and state.sc is not None:
                state.sc.stop()
        state.timings.wall = time.perf_counter() - wall_start
        return state

    # -- internals ------------------------------------------------------------
    def _execute(self, state: PipelineState) -> None:
        stages = self.plan.stages
        # LoadPoints always runs first: the checkpoint key hashes the
        # *normalised* point bytes together with the semantic config.
        self._run_stage(stages[0], state)
        self._checkpoint_barrier(stages[0], state)

        store: CheckpointStore | None = None
        if self.checkpoint_dir is not None:
            store = CheckpointStore(
                self.checkpoint_dir,
                self.config.content_hash(state.points),
                self.config.semantic_dict(),
            )
        decisions = self._plan_decisions(stages[1:], store)

        for stage in stages[1:]:
            decision = decisions[stage.name]
            state.stage_status[stage.name] = decision
            if decision == SKIPPED:
                continue
            if decision == RESTORED:
                with state.tracer.span(
                    "pipeline.stage", cat="pipeline",
                    stage=stage.name, status=RESTORED,
                ):
                    stage.load(state, store)
                state.mark(*stage.provides)
                self._count_checkpoint(stage, hit=True)
            else:
                self._run_stage(stage, state)
                if store is not None and stage.checkpointable:
                    stage.save(state, store)
                    store.complete(stage.name)
                if stage.checkpointable and store is not None:
                    self._count_checkpoint(stage, hit=False)
            self._checkpoint_barrier(stage, state)

    def _run_stage(self, stage: Stage, state: PipelineState) -> None:
        missing = [k for k in stage.requires if not state.has(k)]
        if missing:
            raise PipelineError(
                f"stage {stage.name!r} requires {missing} but no earlier "
                f"stage provided them (plan {self.plan.name!r})"
            )
        stage_start = time.perf_counter()
        with state.tracer.span(
            "pipeline.stage", cat="pipeline", stage=stage.name, status=RUN,
        ):
            stage.run(state)
        if self.metrics_registry is not None:
            self.metrics_registry.histogram(
                "repro_pipeline_stage_seconds",
                "Wall-clock per executed pipeline stage.",
                ("stage",),
            ).observe(time.perf_counter() - stage_start, stage=stage.name)
        state.mark(*stage.provides)
        state.stage_status[stage.name] = RUN

    def _plan_decisions(
        self, stages: tuple[Stage, ...], store: CheckpointStore | None
    ) -> dict[str, str]:
        """Backward pass: decide run/restore/skip per stage (see module doc)."""
        needed: set[str] = set(self.plan.outputs)
        decisions: dict[str, str] = {}
        for stage in reversed(stages):
            restorable = (
                self.resume
                and store is not None
                and stage.checkpointable
                and store.has(stage.name)
            )
            if not stage.always_run and not (set(stage.provides) & needed):
                decisions[stage.name] = SKIPPED
            elif restorable:
                decisions[stage.name] = RESTORED
                needed |= set(stage.load_requires)
            else:
                decisions[stage.name] = RUN
                needed |= set(stage.requires)
        return decisions

    def _checkpoint_barrier(self, stage: Stage, state: PipelineState) -> None:
        if self.fail_after == stage.name:
            raise PipelineCrash(
                f"injected crash after stage {stage.name!r} "
                f"(plan {self.plan.name!r})"
            )

    def _count_checkpoint(self, stage: Stage, hit: bool) -> None:
        if self.metrics_registry is None:
            return
        from ..obs.registry import record_checkpoint

        record_checkpoint(self.metrics_registry, stage.name, hit)

"""Composable driver pipeline behind every DBSCAN frontend.

All five frontends (`repro.dbscan`) are thin compositions of the stages
in this package, executed by one `PipelineRunner`:

- `RunConfig` — the single frozen config replacing the kwarg sprawl;
- `Stage` subclasses — the paper's driver steps as typed objects;
- `Plan` / `build_plan` — the five frontend compositions;
- `PipelineRunner` — spans + metrics per stage, checkpoint/resume;
- `CheckpointStore` — content-hashed per-stage artifacts on disk.

See DESIGN.md §9 for the architecture and checkpoint format.
"""

from .config import ALGORITHMS, HASHED_FIELDS, PARTITIONINGS, RunConfig
from .checkpoint import CheckpointError, CheckpointStore
from .state import PipelineState
from .stages import (
    ApplyGidMap,
    BroadcastModel,
    BuildIndex,
    CollectEdges,
    CollectPartials,
    LoadPoints,
    LocalExpand,
    MergeEdges,
    MergePartials,
    PartitionPlan,
    PipelineError,
    RelabelFilter,
    SequentialExpand,
    SpatialReorder,
    Stage,
)
from .stages_cells import CellCollect, CellPartition, LocalIndexExpand
from .stages_naive import NaiveRelabel, ShuffleExpand
from .stages_mapreduce import MRBuildIndex, MRCollect, MRLocalExpand, MRRelabel
from .plans import (
    PLAN_BUILDERS,
    SHUFFLE_FREE_PLANS,
    STAGE_MANIFEST,
    Plan,
    build_plan,
    cell_edges_plan,
    cell_plan,
    mapreduce_plan,
    naive_plan,
    plan_name,
    sequential_plan,
    spark_edges_plan,
    spark_plan,
    spatial_edges_plan,
    spatial_plan,
)
from .runner import RESTORED, RUN, SKIPPED, PipelineCrash, PipelineRunner

__all__ = [
    "ALGORITHMS",
    "HASHED_FIELDS",
    "PARTITIONINGS",
    "RunConfig",
    "CheckpointError",
    "CheckpointStore",
    "PipelineState",
    "Stage",
    "PipelineError",
    "LoadPoints",
    "SpatialReorder",
    "BuildIndex",
    "PartitionPlan",
    "BroadcastModel",
    "LocalExpand",
    "CollectPartials",
    "MergePartials",
    "CollectEdges",
    "MergeEdges",
    "ApplyGidMap",
    "RelabelFilter",
    "SequentialExpand",
    "CellPartition",
    "LocalIndexExpand",
    "CellCollect",
    "ShuffleExpand",
    "NaiveRelabel",
    "MRBuildIndex",
    "MRLocalExpand",
    "MRCollect",
    "MRRelabel",
    "Plan",
    "PLAN_BUILDERS",
    "STAGE_MANIFEST",
    "SHUFFLE_FREE_PLANS",
    "build_plan",
    "plan_name",
    "spark_plan",
    "spatial_plan",
    "cell_plan",
    "spark_edges_plan",
    "spatial_edges_plan",
    "cell_edges_plan",
    "sequential_plan",
    "naive_plan",
    "mapreduce_plan",
    "PipelineRunner",
    "PipelineCrash",
    "RUN",
    "RESTORED",
    "SKIPPED",
]

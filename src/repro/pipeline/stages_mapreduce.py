"""Alternate stages for DBSCAN over the mini-MapReduce runtime.

The MapReduce plan swaps the Spark engine body for two MR jobs (the
MR-DBSCAN two-round design, see `repro.dbscan.mapreduce_job`): round 1
maps local clustering and reduces the merge, round 2 re-materialises
every (point, label) record through the shuffle.  The structural costs
the paper charges MapReduce — distributed-cache tree loads, on-disk
spills, per-job startup — all live here.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import asdict

import numpy as np

from ..kdtree import KDTree
from ..mapreduce import JobStats, MapReduceJob
from ..dbscan.merge import merge_partials
from ..dbscan.partial import local_dbscan
from .checkpoint import CheckpointStore
from .stages import Stage
from .state import PipelineState


def _graft_map_spans(state: PipelineState, stats: JobStats, job: str) -> None:
    """Record each measured map task as an executor-lane span."""
    if not state.tracer.enabled:
        return
    for m, dur in enumerate(stats.map_task_durations):
        state.tracer.add_span(
            "executor.map_task", dur, cat="executor",
            tid=f"{job}-map-{m}", partition=m, job=job,
        )


class MRBuildIndex(Stage):
    """Build the kd-tree and stage it in the distributed cache.

    Unlike the Spark plan's `BuildIndex`, the pickled tree file is part
    of the deal: every map task re-loads it from disk, which is one of
    the structural costs Figure 7 measures.
    """

    name = "BuildIndex"
    requires = ("points",)
    provides = ("tree", "model_cache")

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        tmp_dir = cfg.tmp_dir or tempfile.mkdtemp(prefix="mrdbscan-")
        state.extras["tmp_dir"] = tmp_dir
        os.makedirs(tmp_dir, exist_ok=True)
        with state.tracer.span("driver.kdtree_build", cat="driver") as sp:
            t0 = time.perf_counter()
            tree = KDTree(state.points, leaf_size=cfg.leaf_size)
            cache_path = os.path.join(tmp_dir, "kdtree.cache.pkl")
            with open(cache_path, "wb") as f:
                pickle.dump(tree, f, protocol=pickle.HIGHEST_PROTOCOL)
            state.timings.kdtree_build = time.perf_counter() - t0
            sp.annotate(n=state.n, cache_bytes=os.path.getsize(cache_path))
        state.tree = tree
        state.extras["cache_path"] = cache_path


class MRLocalExpand(Stage):
    """MR round 1: map local clustering, reduce the SEED merge."""

    name = "LocalExpand"
    requires = ("model_cache", "partitioner")
    provides = ("mr_round1",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        n = state.n
        partitioner = state.partitioner
        cache_path = state.extras["cache_path"]
        eps, minpts, seed_policy = cfg.eps, cfg.minpts, cfg.seed_policy

        def map_local_cluster(map_id, index_range):
            # Distributed cache read: every task pays the deserialisation.
            with open(cache_path, "rb") as fh:
                local_tree = pickle.load(fh)
            partials = local_dbscan(
                map_id, range(*index_range), local_tree.points, local_tree,
                eps, minpts, partitioner, seed_policy=seed_policy,
            )
            yield (0, partials)

        merged_info: dict[str, int] = {}

        def reduce_merge(_key, partial_lists):
            partials = [c for chunk in partial_lists for c in chunk]
            outcome = merge_partials(partials, n)
            merged_info["num_partials"] = len(partials)
            merged_info["num_merges"] = outcome.num_merges
            for i, lab in enumerate(outcome.labels):
                yield (int(i), int(lab))

        job1 = MapReduceJob(
            mapper=map_local_cluster,
            reducer=reduce_merge,
            num_reducers=1,
            tmp_dir=os.path.join(state.extras["tmp_dir"], "job1"),
            startup_overhead=cfg.startup_overhead,
        )
        splits = [
            [(m, partitioner.range_of(m))] for m in range(cfg.num_partitions)
        ]
        with state.tracer.span(
            "mr.job1", round=1, startup_overhead=cfg.startup_overhead
        ):
            labelled = [kv for out in job1.run(splits) for kv in out]
        _graft_map_spans(state, job1.stats, "mr1")
        state.extras["labelled"] = labelled
        state.extras["job1_stats"] = job1.stats
        state.extras["mr_merge_info"] = merged_info

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_json(self.name, {
            "labelled": state.extras["labelled"],
            "job1_stats": asdict(state.extras["job1_stats"]),
            "merge_info": state.extras["mr_merge_info"],
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        state.extras["labelled"] = [
            (int(k), int(v)) for k, v in doc["labelled"]
        ]
        state.extras["job1_stats"] = JobStats(**doc["job1_stats"])
        state.extras["mr_merge_info"] = {
            k: int(v) for k, v in doc["merge_info"].items()
        }


class MRCollect(Stage):
    """MR round 2: re-materialise all (point, label) records (relabel job)."""

    name = "CollectPartials"
    requires = ("mr_round1",)
    provides = ("mr_round2",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        cfg = state.config
        num_maps = cfg.num_partitions

        def map_identity(idx, label):
            yield (idx % num_maps, (idx, label))

        def reduce_collect(_key, values):
            yield from values

        # A resume can restore round 1 and skip MRBuildIndex entirely, so
        # the staging directory may need resolving afresh here.
        tmp_dir = (
            state.extras.get("tmp_dir") or cfg.tmp_dir
            or tempfile.mkdtemp(prefix="mrdbscan-")
        )
        job2 = MapReduceJob(
            mapper=map_identity,
            reducer=reduce_collect,
            num_reducers=num_maps,
            tmp_dir=os.path.join(tmp_dir, "job2"),
            startup_overhead=cfg.startup_overhead,
        )
        with state.tracer.span(
            "mr.job2", round=2, startup_overhead=cfg.startup_overhead
        ):
            out2 = job2.run_on_records(state.extras["labelled"], num_maps)
        _graft_map_spans(state, job2.stats, "mr2")
        state.extras["out2"] = out2
        state.extras["job2_stats"] = job2.stats

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_json(self.name, {
            "out2": [[int(k), int(v)] for k, v in state.extras["out2"]],
            "job2_stats": asdict(state.extras["job2_stats"]),
        })

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        doc = store.load_json(self.name)
        state.extras["out2"] = [(int(k), int(v)) for k, v in doc["out2"]]
        state.extras["job2_stats"] = JobStats(**doc["job2_stats"])


class MRRelabel(Stage):
    """Assemble the final label array from round 2's output records."""

    name = "RelabelFilter"
    requires = ("mr_round2", "n")
    provides = ("labels",)
    checkpointable = True

    def run(self, state: PipelineState) -> None:
        labels = np.full(state.n, -1, dtype=np.int64)
        for idx, lab in state.extras["out2"]:
            labels[idx] = lab
        state.labels = labels

    def save(self, state: PipelineState, store: CheckpointStore) -> None:
        store.save_npz(self.name, labels=state.labels)

    def load(self, state: PipelineState, store: CheckpointStore) -> None:
        state.labels = store.load_npz(self.name)["labels"].astype(np.int64)

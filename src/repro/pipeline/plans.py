"""Plan compositions: the five frontends as stage lists.

The paper's driver program is one fixed sequence; the five frontends are
small edits of it (Section IV vs. the Section V baselines):

==============  ==========================================================
``spark``       LoadPoints → BuildIndex → PartitionPlan → BroadcastModel →
                LocalExpand → CollectPartials → MergePartials → RelabelFilter
``spatial``     the same plan with a SpatialReorder stage after LoadPoints
                (and a permutation-undoing RelabelFilter tail)
``cell``        LoadPoints → CellPartition → LocalIndexExpand → CellCollect →
                MergePartials → RelabelFilter — the spark plan re-based on
                cell partitions with local indexes and an eps-halo; no
                BuildIndex, no BroadcastModel (``partitioning="cells"``)
``*_edges``     the spark/spatial/cell compositions with the edge-based
                merge tail (``merge_mode="edges"``): LocalExpand emits
                digests, then CollectEdges → MergeEdges → ApplyGidMap
                replaces CollectPartials → MergePartials (DESIGN.md §11)
``sequential``  the degenerate single-partition plan: LoadPoints →
                BuildIndex → SequentialExpand
``naive``       LoadPoints → BuildIndex → ShuffleExpand → RelabelFilter
``mapreduce``   LoadPoints → BuildIndex(+cache) → PartitionPlan →
                LocalExpand(MR job 1) → CollectPartials(MR job 2) →
                RelabelFilter
==============  ==========================================================

``Plan.outputs`` names the state keys a frontend reads off the final
state; the runner works backwards from them to decide which stages can be
skipped outright when a resume restores their downstream consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import RunConfig
from .stages import (
    ApplyGidMap,
    BroadcastModel,
    BuildIndex,
    CollectEdges,
    CollectPartials,
    LoadPoints,
    LocalExpand,
    MergeEdges,
    MergePartials,
    PartitionPlan,
    RelabelFilter,
    SequentialExpand,
    SpatialReorder,
    Stage,
)
from .stages_cells import CellCollect, CellPartition, LocalIndexExpand
from .stages_mapreduce import MRBuildIndex, MRCollect, MRLocalExpand, MRRelabel
from .stages_naive import NaiveRelabel, ShuffleExpand


@dataclass(frozen=True)
class Plan:
    """An ordered stage composition plus the keys its caller consumes."""

    name: str
    stages: tuple[Stage, ...]
    outputs: tuple[str, ...] = ("labels",)
    algo_label: str = field(default="")

    def __post_init__(self) -> None:
        if not self.stages or not isinstance(self.stages[0], LoadPoints):
            raise ValueError("every plan must start with LoadPoints")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in plan: {names}")

    def stage_names(self) -> tuple[str, ...]:
        """The stage names, in execution order."""
        return tuple(s.name for s in self.stages)


def spark_plan(config: RunConfig) -> Plan:
    """The paper's SEED pipeline (Algorithm 2)."""
    return Plan(
        name="spark",
        algo_label="SparkDBSCAN",
        stages=(
            LoadPoints(),
            BuildIndex(),
            PartitionPlan(),
            BroadcastModel(),
            LocalExpand(),
            CollectPartials(),
            MergePartials(),
            RelabelFilter(),
        ),
        outputs=("labels", "outcome", "partials"),
    )


def spatial_plan(config: RunConfig) -> Plan:
    """The SEED pipeline over spatially-reordered indices (future work)."""
    return Plan(
        name="spatial",
        algo_label="SpatialSparkDBSCAN",
        stages=(
            LoadPoints(),
            SpatialReorder(),
            # The tree must be built over the *reordered* points, so the
            # build depends on the permutation having been applied.
            BuildIndex(requires=("points", "perm")),
            PartitionPlan(),
            BroadcastModel(),
            LocalExpand(),
            CollectPartials(),
            MergePartials(),
            RelabelFilter(spatial=True, keep_partials=config.keep_partials),
        ),
        outputs=("labels", "outcome", "partials", "perm"),
    )


def cell_plan(config: RunConfig) -> Plan:
    """The SEED pipeline over cell partitions with partition-local
    indexes and an eps-halo (``RunConfig(partitioning="cells")``).

    No `BuildIndex`, no `BroadcastModel`: the driver never constructs a
    global kd-tree and nothing dataset-sized is ever broadcast — each
    executor indexes only its (owned + halo) payload.
    """
    return Plan(
        name="cell",
        algo_label="SparkDBSCAN[cells]",
        stages=(
            LoadPoints(),
            CellPartition(),
            LocalIndexExpand(),
            CellCollect(),
            MergePartials(),
            RelabelFilter(),
        ),
        outputs=("labels", "outcome", "partials"),
    )


def spark_edges_plan(config: RunConfig) -> Plan:
    """The SEED pipeline with the edge-based merge tail
    (``RunConfig(merge_mode="edges")``, DESIGN.md §11).

    Executors cache their expansions and ship only partition digests;
    the driver union-finds over cluster keys and a second distributed
    pass applies the broadcast gid map.  Labels are byte-identical to
    the partial-mode plan.
    """
    return Plan(
        name="spark_edges",
        algo_label="SparkDBSCAN[edges]",
        stages=(
            LoadPoints(),
            BuildIndex(),
            PartitionPlan(),
            BroadcastModel(),
            LocalExpand(emit="edges"),
            CollectEdges(),
            MergeEdges(),
            ApplyGidMap(),
            RelabelFilter(),
        ),
        outputs=("labels", "outcome"),
    )


def spatial_edges_plan(config: RunConfig) -> Plan:
    """The spatial SEED pipeline with the edge-based merge tail."""
    return Plan(
        name="spatial_edges",
        algo_label="SpatialSparkDBSCAN[edges]",
        stages=(
            LoadPoints(),
            SpatialReorder(),
            BuildIndex(requires=("points", "perm")),
            PartitionPlan(),
            BroadcastModel(),
            LocalExpand(emit="edges"),
            CollectEdges(),
            MergeEdges(),
            ApplyGidMap(),
            # keep_partials is rejected with merge_mode="edges" (no
            # partials ever reach the driver), so the tail only undoes
            # the permutation.
            RelabelFilter(spatial=True),
        ),
        outputs=("labels", "outcome", "perm"),
    )


def cell_edges_plan(config: RunConfig) -> Plan:
    """The cell-partitioned SEED pipeline with the edge-based merge tail.

    Still no dataset-sized broadcast: `ApplyGidMap` broadcasts only the
    O(partials) gid map.
    """
    return Plan(
        name="cell_edges",
        algo_label="SparkDBSCAN[cells,edges]",
        stages=(
            LoadPoints(),
            CellPartition(),
            LocalIndexExpand(emit="edges"),
            CollectEdges(),
            MergeEdges(),
            ApplyGidMap(),
            RelabelFilter(),
        ),
        outputs=("labels", "outcome"),
    )


def sequential_plan(config: RunConfig) -> Plan:
    """Algorithm 1 as a degenerate single-partition plan."""
    return Plan(
        name="sequential",
        algo_label="sequential",
        stages=(
            LoadPoints(),
            BuildIndex(),
            SequentialExpand(),
        ),
        outputs=("labels",),
    )


def naive_plan(config: RunConfig) -> Plan:
    """The shuffle-per-round baseline the paper argues against."""
    return Plan(
        name="naive",
        algo_label="NaiveSparkDBSCAN",
        stages=(
            LoadPoints(),
            BuildIndex(),
            ShuffleExpand(),
            NaiveRelabel(),
        ),
        outputs=("labels", "propagated"),
    )


def mapreduce_plan(config: RunConfig) -> Plan:
    """Two-round MR-DBSCAN over the mini-MapReduce runtime (Figure 7)."""
    return Plan(
        name="mapreduce",
        algo_label="MapReduceDBSCAN",
        stages=(
            LoadPoints(),
            MRBuildIndex(),
            PartitionPlan(),
            MRLocalExpand(),
            MRCollect(),
            MRRelabel(),
        ),
        outputs=("labels", "mr_round1", "mr_round2"),
    )


PLAN_BUILDERS = {
    "spark": spark_plan,
    "spatial": spatial_plan,
    "cell": cell_plan,
    "spark_edges": spark_edges_plan,
    "spatial_edges": spatial_edges_plan,
    "cell_edges": cell_edges_plan,
    "sequential": sequential_plan,
    "naive": naive_plan,
    "mapreduce": mapreduce_plan,
}

# Static mirror of the plan compositions above, as stage *class* names.
# Pure literals on purpose: the whole-program linter (repro.lint.plans)
# reads this straight off the AST — without importing or executing
# anything — to verify each plan's requires/provides chain and to
# derive the SHF001 entry points.  tests/pipeline/test_plans.py asserts
# it stays in sync with the builders.
STAGE_MANIFEST = {
    "spark": (
        "LoadPoints", "BuildIndex", "PartitionPlan", "BroadcastModel",
        "LocalExpand", "CollectPartials", "MergePartials", "RelabelFilter",
    ),
    "spatial": (
        "LoadPoints", "SpatialReorder", "BuildIndex", "PartitionPlan",
        "BroadcastModel", "LocalExpand", "CollectPartials", "MergePartials",
        "RelabelFilter",
    ),
    "cell": (
        "LoadPoints", "CellPartition", "LocalIndexExpand", "CellCollect",
        "MergePartials", "RelabelFilter",
    ),
    "spark_edges": (
        "LoadPoints", "BuildIndex", "PartitionPlan", "BroadcastModel",
        "LocalExpand", "CollectEdges", "MergeEdges", "ApplyGidMap",
        "RelabelFilter",
    ),
    "spatial_edges": (
        "LoadPoints", "SpatialReorder", "BuildIndex", "PartitionPlan",
        "BroadcastModel", "LocalExpand", "CollectEdges", "MergeEdges",
        "ApplyGidMap", "RelabelFilter",
    ),
    "cell_edges": (
        "LoadPoints", "CellPartition", "LocalIndexExpand", "CollectEdges",
        "MergeEdges", "ApplyGidMap", "RelabelFilter",
    ),
    "sequential": ("LoadPoints", "BuildIndex", "SequentialExpand"),
    "naive": ("LoadPoints", "BuildIndex", "ShuffleExpand", "NaiveRelabel"),
    "mapreduce": (
        "LoadPoints", "MRBuildIndex", "PartitionPlan", "MRLocalExpand",
        "MRCollect", "MRRelabel",
    ),
}

# Plans under the paper's zero-shuffle contract (Algorithms 3-4): their
# stage classes are SHF001 entry points, so a stage added to these
# compositions is automatically under the shuffle-free proof.
SHUFFLE_FREE_PLANS = (
    "spark", "spatial", "cell", "spark_edges", "spatial_edges", "cell_edges",
)

# Static per-stage size-class contract (DESIGN.md §8.7).  Pure literals
# again: ``repro.lint.sizeclass`` reads the ``input``/``output`` classes
# straight off the AST to seed the size-class abstract interpretation
# (the SCL rules), and ``repro.lint.plans`` verifies every entry names a
# manifest stage class, every manifest stage is covered, and the classes
# are drawn from the O(1) ⊑ O(cells) ⊑ O(partials) ⊑ O(edges) ⊑
# O(points) lattice.  "input"/"output" describe the *driver-resident*
# data a stage consumes/produces — a stage whose work lives in a lazy
# RDD plan is O(1) on the driver even though executors touch O(points).
SIZE_MANIFEST = {
    "LoadPoints": {"input": "O(points)", "output": "O(points)"},
    "SpatialReorder": {"input": "O(points)", "output": "O(points)"},
    "BuildIndex": {"input": "O(points)", "output": "O(points)"},
    "PartitionPlan": {"input": "O(1)", "output": "O(1)"},
    "BroadcastModel": {"input": "O(points)", "output": "O(1)"},
    "CellPartition": {"input": "O(points)", "output": "O(points)"},
    "LocalExpand": {"input": "O(1)", "output": "O(1)"},
    "LocalIndexExpand": {"input": "O(1)", "output": "O(1)"},
    "CollectPartials": {"input": "O(points)", "output": "O(points)"},
    "CellCollect": {"input": "O(points)", "output": "O(points)"},
    "CollectEdges": {"input": "O(edges)", "output": "O(edges)"},
    "MergeEdges": {"input": "O(edges)", "output": "O(partials)"},
    "MergePartials": {"input": "O(points)", "output": "O(points)"},
    "ApplyGidMap": {"input": "O(partials)", "output": "O(points)"},
    "RelabelFilter": {"input": "O(points)", "output": "O(points)"},
    "SequentialExpand": {"input": "O(points)", "output": "O(points)"},
    "ShuffleExpand": {"input": "O(points)", "output": "O(points)"},
    "NaiveRelabel": {"input": "O(points)", "output": "O(points)"},
    "MRBuildIndex": {"input": "O(points)", "output": "O(points)"},
    "MRLocalExpand": {"input": "O(1)", "output": "O(1)"},
    "MRCollect": {"input": "O(points)", "output": "O(points)"},
    "MRRelabel": {"input": "O(points)", "output": "O(points)"},
}


def plan_name(config: RunConfig) -> str:
    """The plan a config resolves to.

    ``partitioning="cells"`` swaps the spark composition for the cell
    plan; ``merge_mode="edges"`` swaps the merge tail; every other
    config maps straight to its algorithm name.
    """
    base = "cell" if config.partitioning == "cells" else config.algorithm
    if config.merge_mode == "edges":
        return f"{base}_edges"
    return base


def build_plan(config: RunConfig) -> Plan:
    """The plan composition for ``config.algorithm``/``partitioning``."""
    try:
        builder = PLAN_BUILDERS[plan_name(config)]
    except KeyError:
        raise ValueError(f"unknown algorithm {config.algorithm!r}") from None
    return builder(config)

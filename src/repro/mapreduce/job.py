"""Mini Hadoop-MapReduce: map → spill/sort → shuffle → reduce.

The data flow follows the paper's Figure 2 exactly:

1. **Map phase** — each map task reads one input split, applies the
   mapper, optionally combines, partitions output by key hash, *sorts*
   each bucket, and **writes it to local disk** (the materialisation
   MapReduce always pays and Spark avoids — the mechanism behind the
   paper's Figure 7 gap).
2. **Shuffle** — each reduce task remote-reads its buckets from every
   map task's local disk (here: re-reads the spill files).
3. **Reduce phase** — merge-sorts the fetched runs, groups by key, and
   applies the reducer; output is appended to part files.

Tasks run serially and are individually timed; phase wall-clock on
``slots`` cores is the measured-task makespan (same methodology as the
Spark engine's ``simulated`` backend, so Figure 7's comparison is
apples-to-apples).  A per-job ``startup_overhead`` models JVM/job
submission latency, configurable and reported separately so the honest
disk/sort costs are visible on their own.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..engine.fault import FaultPlan
from ..engine.metrics import makespan

Mapper = Callable[[Any, Any], Iterable[tuple[Any, Any]]]
Reducer = Callable[[Any, list[Any]], Iterable[tuple[Any, Any]]]
Combiner = Callable[[Any, list[Any]], Iterable[tuple[Any, Any]]]


@dataclass
class JobStats:
    """Phase timings and I/O accounting for one MapReduce job."""

    map_task_durations: list[float] = field(default_factory=list)
    reduce_task_durations: list[float] = field(default_factory=list)
    spill_bytes: int = 0          # map-side disk writes
    shuffle_bytes: int = 0        # reduce-side disk reads
    startup_overhead: float = 0.0
    map_attempts: int = 0
    reduce_attempts: int = 0

    def wall(self, slots: int) -> float:
        """Job wall-clock on ``slots`` cores: map barrier, then reduce."""
        return (
            self.startup_overhead
            + makespan(self.map_task_durations, slots)
            + makespan(self.reduce_task_durations, slots)
        )

    @property
    def total_task_time(self) -> float:
        """Sum of all map and reduce task durations."""
        return sum(self.map_task_durations) + sum(self.reduce_task_durations)


class MapReduceJob:
    """One MapReduce job.

    ``mapper(key, value)`` yields (k2, v2) pairs; ``reducer(k2, values)``
    yields output pairs.  Keys crossing the shuffle must be hashable and
    sortable (Hadoop requires WritableComparable keys for the same
    reason).
    """

    MAX_TASK_ATTEMPTS = 4

    def __init__(
        self,
        mapper: Mapper,
        reducer: Reducer,
        combiner: Combiner | None = None,
        num_reducers: int = 1,
        tmp_dir: str | None = None,
        startup_overhead: float = 0.0,
        fault_plan: FaultPlan | None = None,
    ):
        if num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.num_reducers = num_reducers
        self.tmp_dir = tmp_dir or tempfile.mkdtemp(prefix="minimr-")
        self.startup_overhead = startup_overhead
        self.fault_plan = fault_plan or FaultPlan()
        self.stats = JobStats(startup_overhead=startup_overhead)

    # -- public API -----------------------------------------------------------
    def run(self, splits: list[list[tuple[Any, Any]]]) -> list[list[tuple[Any, Any]]]:
        """Execute the job over ``splits`` (a list of record lists).

        Returns one output record list per reducer.
        """
        os.makedirs(self.tmp_dir, exist_ok=True)
        spill_paths = [self._run_map_task(m, split) for m, split in enumerate(splits)]
        outputs = [
            self._run_reduce_task(r, spill_paths) for r in range(self.num_reducers)
        ]
        return outputs

    def run_on_records(self, records: list[tuple[Any, Any]], num_maps: int) -> list[tuple[Any, Any]]:
        """Convenience: split flat records into ``num_maps`` splits, run,
        concatenate reducer outputs."""
        if num_maps < 1:
            raise ValueError(f"num_maps must be >= 1, got {num_maps}")
        base, extra = divmod(len(records), num_maps)
        splits, start = [], 0
        for i in range(num_maps):
            size = base + (1 if i < extra else 0)
            splits.append(records[start : start + size])
            start += size
        return [kv for out in self.run(splits) for kv in out]

    # -- map side ----------------------------------------------------------------
    def _run_map_task(
        self, map_id: int, split: list[tuple[Any, Any]]
    ) -> dict[int, str]:
        """Returns bucket spill paths for this map task (reduce id -> path)."""
        attempt = 0
        while True:
            self.stats.map_attempts += 1
            try:
                t0 = time.perf_counter()
                self.fault_plan.check(0, map_id, attempt)
                paths = self._map_attempt(map_id, split)
                self.stats.map_task_durations.append(time.perf_counter() - t0)
                return paths
            except Exception:
                attempt += 1
                if attempt >= self.MAX_TASK_ATTEMPTS:
                    raise

    def _map_attempt(self, map_id: int, split: list[tuple[Any, Any]]) -> dict[int, str]:
        buckets: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for key, value in split:
            for k2, v2 in self.mapper(key, value):
                buckets[hash(k2) % self.num_reducers].append((k2, v2))
        paths: dict[int, str] = {}
        for r, items in buckets.items():
            if self.combiner is not None:
                items = self._combine(items)
            items.sort(key=lambda kv: kv[0])  # map-side sort (Figure 2)
            blob = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
            path = os.path.join(self.tmp_dir, f"spill-m{map_id}-r{r}.pkl")
            with open(path, "wb") as f:
                f.write(blob)
            self.stats.spill_bytes += len(blob)
            paths[r] = path
        return paths

    def _combine(self, items: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for k, v in items:
            grouped[k].append(v)
        out: list[tuple[Any, Any]] = []
        assert self.combiner is not None
        for k, vs in grouped.items():
            out.extend(self.combiner(k, vs))
        return out

    # -- reduce side ---------------------------------------------------------------
    def _run_reduce_task(
        self, reduce_id: int, spill_paths: list[dict[int, str]]
    ) -> list[tuple[Any, Any]]:
        attempt = 0
        while True:
            self.stats.reduce_attempts += 1
            try:
                t0 = time.perf_counter()
                self.fault_plan.check(1, reduce_id, attempt)
                out = self._reduce_attempt(reduce_id, spill_paths)
                self.stats.reduce_task_durations.append(time.perf_counter() - t0)
                return out
            except Exception:
                attempt += 1
                if attempt >= self.MAX_TASK_ATTEMPTS:
                    raise

    def _reduce_attempt(
        self, reduce_id: int, spill_paths: list[dict[int, str]]
    ) -> list[tuple[Any, Any]]:
        runs: list[list[tuple[Any, Any]]] = []
        for paths in spill_paths:
            path = paths.get(reduce_id)
            if path is None:
                continue
            with open(path, "rb") as f:
                blob = f.read()
            self.stats.shuffle_bytes += len(blob)
            runs.append(pickle.loads(blob))
        merged: Iterator[tuple[Any, Any]] = heapq.merge(*runs, key=lambda kv: kv[0])
        output: list[tuple[Any, Any]] = []
        current_key: Any = _SENTINEL
        values: list[Any] = []
        for k, v in merged:
            if k != current_key:
                if current_key is not _SENTINEL:
                    output.extend(self.reducer(current_key, values))
                current_key, values = k, [v]
            else:
                values.append(v)
        if current_key is not _SENTINEL:
            output.extend(self.reducer(current_key, values))
        return output


_SENTINEL = object()

"""Mini Hadoop-MapReduce runtime (the paper's Figure 7 baseline)."""

from .job import JobStats, MapReduceJob
from .tracker import JobTracker, TaskState, TaskTracker, TrackedTask

__all__ = [
    "MapReduceJob",
    "JobStats",
    "JobTracker",
    "TaskTracker",
    "TrackedTask",
    "TaskState",
]

"""JobTracker / TaskTracker model with heartbeat-based failure detection.

The paper's Section II-B describes the mechanism: the JobTracker
declares a TaskTracker dead when no heartbeat arrives within a timeout,
then reschedules its pending and in-progress tasks elsewhere (the
intermediate data of the failed tracker being lost).  This module
simulates that control plane on a virtual clock so tests can exercise
failure → reschedule → completion without real multi-second waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TaskState(Enum):
    """Lifecycle of a tracked task."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class TrackedTask:
    """One task's scheduling state on the JobTracker."""

    task_id: int
    state: TaskState = TaskState.PENDING
    tracker: int | None = None
    attempts: int = 0


@dataclass
class TaskTracker:
    """A worker node, identified by its heartbeats."""

    tracker_id: int
    last_heartbeat: float = 0.0
    alive: bool = True
    running: set[int] = field(default_factory=set)


class JobTracker:
    """Assigns tasks to trackers; reschedules when heartbeats stop."""

    def __init__(self, num_trackers: int, heartbeat_timeout: float = 3.0):
        if num_trackers < 1:
            raise ValueError("need at least one tracker")
        self.trackers = [TaskTracker(i) for i in range(num_trackers)]
        self.heartbeat_timeout = heartbeat_timeout
        self.tasks: dict[int, TrackedTask] = {}
        self.clock = 0.0
        self.reschedules = 0

    def submit(self, num_tasks: int) -> None:
        """Register a job's tasks as pending."""
        for i in range(num_tasks):
            self.tasks[i] = TrackedTask(i)

    # -- control-plane events (driven by tests / the MR driver) -------------
    def heartbeat(self, tracker_id: int, now: float | None = None) -> None:
        """Record a liveness ping from a tracker."""
        t = self.trackers[tracker_id]
        if not t.alive:
            raise RuntimeError(f"tracker {tracker_id} is dead")
        t.last_heartbeat = now if now is not None else self.clock

    def advance_clock(self, dt: float) -> None:
        """Move virtual time forward and expire silent trackers."""
        self.clock += dt
        for t in self.trackers:
            if t.alive and self.clock - t.last_heartbeat > self.heartbeat_timeout:
                self._expire(t)

    def kill_tracker(self, tracker_id: int) -> None:
        """Hard-kill: the tracker stops heartbeating immediately."""
        self.trackers[tracker_id].alive = False
        self._expire(self.trackers[tracker_id])

    def _expire(self, tracker: TaskTracker) -> None:
        tracker.alive = False
        # Intermediate data of a failed tracker is gone: its running
        # tasks go back to pending (the paper's description of pre-0.21
        # MapReduce recovery).
        for task_id in list(tracker.running):
            task = self.tasks[task_id]
            task.state = TaskState.PENDING
            task.tracker = None
            self.reschedules += 1
        tracker.running.clear()

    # -- scheduling ------------------------------------------------------------
    def assign_pending(self) -> list[tuple[int, int]]:
        """Assign every pending task to a live tracker (round-robin).
        Returns (task_id, tracker_id) assignments made."""
        live = [t for t in self.trackers if t.alive]
        if not live:
            raise RuntimeError("no live task trackers")
        out: list[tuple[int, int]] = []
        i = 0
        for task in self.tasks.values():
            if task.state is TaskState.PENDING:
                tracker = live[i % len(live)]
                i += 1
                task.state = TaskState.RUNNING
                task.tracker = tracker.tracker_id
                task.attempts += 1
                tracker.running.add(task.task_id)
                out.append((task.task_id, tracker.tracker_id))
        return out

    def complete(self, task_id: int) -> None:
        """Mark a running task as successfully finished."""
        task = self.tasks[task_id]
        if task.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {task_id} not running")
        task.state = TaskState.DONE
        if task.tracker is not None:
            self.trackers[task.tracker].running.discard(task_id)

    @property
    def all_done(self) -> bool:
        """True when every submitted task has completed."""
        return all(t.state is TaskState.DONE for t in self.tasks.values())

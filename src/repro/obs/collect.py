"""Worker-side telemetry: task spans and metric deltas shipped cross-process.

After PR 2 the span layer stopped at the scheduler boundary: under the
``processes`` backend every task ran as one opaque block, because the
driver's `Tracer` lives in the driver process and cannot be (and must
not be) pickled into task closures.  This module is the distributed
half: a picklable `WorkerTelemetry` buffer is created *inside* the
worker by `repro.engine.executor.run_task`, task code brackets its
sub-phases with `task_span`, and the buffer rides back to the driver
attached to the `TaskOutcome`, where `merge_telemetry` grafts the spans
into the driver tracer — worker pid preserved, timestamps rebased to
the driver clock — so one Perfetto trace shows the whole run.

Clock rebase
------------
Worker spans are recorded as ``perf_counter()`` offsets from the
buffer's creation instant (``perf_anchor``).  ``perf_counter`` is only
meaningful within one process, so the buffer also records the wall
clock at the same instant (``wall_anchor``); the driver tracer records
its own pair (`Tracer._origin` / `Tracer._origin_wall`).  At merge
time::

    same process     base = telemetry.perf_anchor - tracer._origin
    other process    base = telemetry.wall_anchor - tracer._origin_wall

and every span lands at ``base + span.start`` on the tracer timeline.
The cross-process path inherits wall-clock granularity and any drift
between ``time.time`` and ``perf_counter`` over the run — negligible
(sub-millisecond) at task timescales, and irrelevant for the same-pid
fast path the thread/local/simulated backends take.

Task code never imports the engine at module level here: the active
buffer is found through the thread-local `TaskContext`, imported
lazily, so this module stays importable from either side of the
``obs``/``engine`` boundary.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any

from .spans import _NULL_HANDLE, Tracer

__all__ = [
    "WorkerSpan",
    "WorkerTelemetry",
    "current_telemetry",
    "merge_telemetry",
    "task_span",
]


@dataclass
class WorkerSpan:
    """One timed sub-phase recorded inside a worker task (picklable)."""

    name: str
    start: float            # seconds since the telemetry anchor (may be < 0)
    dur: float
    cpu_s: float = 0.0
    cat: str = "worker"
    labels: dict[str, Any] = field(default_factory=dict)

    def annotate(self, **labels: Any) -> "WorkerSpan":
        """Attach labels; returns self for chaining (Span-compatible)."""
        self.labels.update(labels)
        return self


class _WorkerSpanHandle:
    """Context manager recording one `WorkerSpan` on a telemetry buffer."""

    __slots__ = ("_telemetry", "_span", "_t0", "_cpu0")

    def __init__(self, telemetry: "WorkerTelemetry", span: WorkerSpan):
        self._telemetry = telemetry
        self._span = span
        self._t0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> WorkerSpan:
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._span.start = self._t0 - self._telemetry.perf_anchor
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._span.dur = time.perf_counter() - self._t0
        self._span.cpu_s = time.process_time() - self._cpu0
        self._telemetry.spans.append(self._span)


@dataclass
class WorkerTelemetry:
    """Picklable per-task telemetry buffer created inside the worker.

    Carries the worker's pid, the two clock anchors (see module
    docstring), the recorded sub-phase spans, and buffered counter
    deltas destined for the driver's metrics registry.
    """

    pid: int
    wall_anchor: float      # time.time() at creation — cross-process rebase
    perf_anchor: float      # perf_counter() at creation — same-process rebase
    tid: str = "worker"
    spans: list[WorkerSpan] = field(default_factory=list)
    # (metric name, help text, amount, labels) — folded into counters.
    metric_deltas: list[tuple[str, str, float, dict[str, Any]]] = field(
        default_factory=list
    )

    @classmethod
    def create(cls, tid: str = "worker") -> "WorkerTelemetry":
        """New buffer anchored to this process's clocks, right now."""
        return cls(
            pid=os.getpid(),
            wall_anchor=time.time(),  # lint: allow[DET001] clock-rebase anchor, not task output
            perf_anchor=time.perf_counter(),
            tid=tid,
        )

    def now(self) -> float:
        """Seconds since the anchor (this process only)."""
        return time.perf_counter() - self.perf_anchor

    def span(self, name: str, **labels: Any) -> _WorkerSpanHandle:
        """Open a timed sub-phase; use as a context manager."""
        return _WorkerSpanHandle(
            self, WorkerSpan(name=name, start=0.0, dur=0.0, labels=labels)
        )

    def add_span(
        self,
        name: str,
        start: float,
        dur: float,
        cpu_s: float = 0.0,
        **labels: Any,
    ) -> WorkerSpan:
        """Record an externally measured sub-phase.  ``start`` is seconds
        relative to the anchor; negative values (work done before the
        buffer existed, e.g. task deserialization) are legal."""
        span = WorkerSpan(name=name, start=start, dur=dur, cpu_s=cpu_s,
                          labels=labels)
        self.spans.append(span)
        return span

    def inc(self, name: str, amount: float = 1.0, help: str = "",
            **labels: Any) -> None:
        """Buffer a counter increment to apply at the driver registry."""
        self.metric_deltas.append((name, help, float(amount), labels))

    def phase_totals(self) -> dict[str, float]:
        """Summed duration per span name (event-log summary payload)."""
        totals: dict[str, float] = {}
        for s in self.spans:
            totals[s.name] = totals.get(s.name, 0.0) + s.dur
        return totals


def current_telemetry() -> WorkerTelemetry | None:
    """The running task's telemetry buffer, or None (driver / untraced)."""
    # Imported lazily: repro.engine imports repro.obs.spans at module
    # level, so the reverse import must not run at obs import time.
    from ..engine import task_context

    ctx = task_context.get()
    return getattr(ctx, "telemetry", None) if ctx is not None else None


def task_span(name: str, **labels: Any):
    """Bracket a sub-phase of task code; no-op outside a telemetry-
    collecting task (costs one thread-local read).

    ::

        with task_span("task.kdtree_build", n=len(points)) as sp:
            tree = KDTree(points)
            sp.annotate(leaves=tree.num_leaves)
    """
    telemetry = current_telemetry()
    if telemetry is None:
        return _NULL_HANDLE
    return telemetry.span(name, **labels)


def merge_telemetry(
    tracer: Tracer,
    telemetry: WorkerTelemetry,
    registry: Any = None,
) -> None:
    """Fold one task's worker telemetry into the driver-side stores.

    Spans are grafted into ``tracer`` rebased to its timeline with the
    worker pid preserved (see module docstring for the two-anchor
    scheme); buffered metric deltas are folded into ``registry``.
    """
    if tracer.enabled and telemetry.spans:
        if telemetry.pid == os.getpid():
            base = telemetry.perf_anchor - tracer._origin
        else:
            base = telemetry.wall_anchor - tracer._origin_wall
        for ws in telemetry.spans:
            tracer.add_span(
                ws.name, ws.dur, cat=ws.cat, tid=telemetry.tid,
                start=base + ws.start, pid=telemetry.pid, cpu_s=ws.cpu_s,
                **ws.labels,
            )
    if registry is not None:
        for name, help_text, amount, labels in telemetry.metric_deltas:
            registry.counter(
                name, help_text, tuple(sorted(labels))
            ).inc(amount, **labels)

"""Structured span tracing: nestable timed regions with labels.

One `Tracer` instance accompanies one run (a ``SparkDBSCAN.fit``, an
engine job, a benchmark sweep point).  Instrumented code brackets its
phases::

    with tracer.span("driver.kdtree_build", cat="driver") as sp:
        tree = KDTree(points)
        sp.annotate(n=len(points))

Spans nest through a thread-local stack, carry wall and CPU time plus
free-form labels, and export as JSON-lines in Chrome trace-event format
(``ph: "X"`` complete events, microsecond timestamps) — the file loads
directly in Perfetto / ``chrome://tracing``.

Executor work that ran in another thread, process, or the simulated
backend is grafted in after the fact with `Tracer.add_span`, which
takes an externally measured duration; the synthetic span carries a
``tid`` naming its virtual execution lane so lanes render side by side.

The default tracer everywhere is the module singleton `NULL_TRACER`:
every operation on it is a no-op returning shared immutable objects, so
the disabled path costs one attribute check and no allocation — safe to
leave in the executor hot loop's callers.

Span categories (``cat``) are load-bearing for `repro.obs.report`:

- ``"driver"``    — driver-side algorithm phases (tree build, setup,
  accumulator drain, merge, relabel).  Summed into driver time.
- ``"executor"``  — per-partition clustering work.  Summed into
  executor time; the max is the parallel executor wall-clock.
- ``"engine"``    — scheduler internals (jobs, stages, task attempts).
  Reported separately, never double-counted into the driver/executor
  split.
- ``"worker"``    — task-internal sub-phases (deserialize, expand,
  kd-tree build, serialize) measured *inside* executor workers and
  merged back by `repro.obs.collect` with the worker pid preserved and
  timestamps rebased to the driver clock.  Reported as a phase
  breakdown, never double-counted into executor time (the enclosing
  ``cat="executor"`` span already covers them).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "load_trace"]


@dataclass
class Span:
    """One timed region: name, wall/CPU interval, labels, nesting depth."""

    name: str
    cat: str = ""
    tid: str = "driver"
    start: float = 0.0          # perf_counter seconds, tracer-relative
    end: float = 0.0
    cpu_start: float = 0.0      # process_time seconds
    cpu_end: float = 0.0
    depth: int = 0
    pid: int = 0                # 0 = driver; worker spans carry the OS pid
    labels: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span."""
        return self.end - self.start

    @property
    def cpu_time(self) -> float:
        """CPU seconds spent inside the span (0 for grafted spans)."""
        return self.cpu_end - self.cpu_start

    def annotate(self, **labels: Any) -> "Span":
        """Attach labels to the span; returns self for chaining."""
        self.labels.update(labels)
        return self

    def to_event(self) -> dict[str, Any]:
        """Chrome trace-event ("X" complete event) representation."""
        return {
            "name": self.name,
            "cat": self.cat or "default",
            "ph": "X",
            "ts": round(self.start * 1e6, 3),
            "dur": round(self.duration * 1e6, 3),
            "pid": self.pid,
            "tid": self.tid,
            "args": {
                **self.labels,
                "depth": self.depth,
                "cpu_ms": round(self.cpu_time * 1e3, 3),
            },
        }


class _SpanHandle:
    """Context manager opening/closing one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter() - self._tracer._origin
        self._span.cpu_start = time.process_time()
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._span.end = time.perf_counter() - self._tracer._origin
        self._span.cpu_end = time.process_time()
        self._tracer._pop(self._span)


class Tracer:
    """Collects spans for one run; thread-safe, nestable, exportable.

    All timestamps are relative to the tracer's creation, so traces
    from repeated runs line up at t=0 when compared.
    """

    enabled = True

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        # Wall-clock twin of the origin: worker telemetry created in other
        # processes anchors itself with time.time(), and the difference to
        # this value rebases its spans onto the tracer's timeline.
        self._origin_wall = time.time()  # lint: allow[DET001] clock-rebase anchor
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "", tid: str | None = None,
             **labels: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        parent = self.current()
        depth = parent.depth + 1 if parent is not None else 0
        if tid is None:
            tid = parent.tid if parent is not None else "driver"
        return _SpanHandle(
            self, Span(name=name, cat=cat, tid=tid, depth=depth, labels=labels)
        )

    def add_span(
        self,
        name: str,
        duration: float,
        cat: str = "",
        tid: str = "driver",
        start: float | None = None,
        pid: int = 0,
        cpu_s: float = 0.0,
        **labels: Any,
    ) -> Span:
        """Graft an externally measured span (e.g. a task that ran in a
        worker process).  ``start`` is tracer-relative seconds; when
        omitted the span is back-dated so it ends now.  ``pid`` names the
        process the work ran in (0 = driver) and ``cpu_s`` carries an
        externally measured CPU time."""
        now = time.perf_counter() - self._origin
        if start is None:
            start = now - duration
        span = Span(
            name=name, cat=cat, tid=tid, start=start, end=start + duration,
            cpu_start=0.0, cpu_end=cpu_s, depth=0, pid=pid, labels=labels,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def instant(self, name: str, cat: str = "", **labels: Any) -> Span:
        """Record a zero-duration marker event."""
        return self.add_span(name, 0.0, cat=cat, **labels)

    def current(self) -> Span | None:
        """The innermost open span on this thread, or None."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._tls.stack
        assert stack and stack[-1] is span, "span closed out of order"
        stack.pop()
        with self._lock:
            self._spans.append(span)

    # -- access / export ---------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration of all spans with the given name."""
        return sum(s.duration for s in self.find(name))

    def to_events(self) -> list[dict[str, Any]]:
        """All spans as Chrome trace events, sorted by start time."""
        return [s.to_event() for s in sorted(self.spans, key=lambda s: s.start)]

    def write_jsonl(self, path: str) -> None:
        """Write one Chrome trace event per line (Perfetto-loadable).

        Besides the "X" span events, one ``process_name`` metadata event
        is emitted per distinct pid so Perfetto labels the driver and
        worker process tracks.
        """
        events = self.to_events()
        with open(path, "w") as f:
            for pid in sorted({e.get("pid", 0) for e in events}):
                f.write(json.dumps({
                    "name": "process_name", "ph": "M", "pid": pid,
                    "args": {"name": "driver" if pid == 0 else f"worker-{pid}"},
                }) + "\n")
            for event in events:
                f.write(json.dumps(event) + "\n")


class _NullSpan:
    """Inert span: accepts annotations, records nothing."""

    __slots__ = ()
    name = ""
    cat = ""
    tid = "driver"
    depth = 0
    pid = 0
    start = end = cpu_start = cpu_end = 0.0
    duration = cpu_time = 0.0
    labels: dict[str, Any] = {}

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self


class _NullHandle:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()


class NullTracer(Tracer):
    """Disabled tracer: every call is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:  # no lock, no storage
        self._origin = 0.0
        self._origin_wall = 0.0

    def span(self, name: str, cat: str = "", tid: str | None = None,
             **labels: Any) -> _NullHandle:  # type: ignore[override]
        return _NULL_HANDLE

    def add_span(self, name: str, duration: float, cat: str = "",
                 tid: str = "driver", start: float | None = None,
                 pid: int = 0, cpu_s: float = 0.0,
                 **labels: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "", **labels: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def current(self) -> None:
        return None

    @property
    def spans(self) -> list[Span]:
        return []

    def to_events(self) -> list[dict[str, Any]]:
        return []

    def write_jsonl(self, path: str) -> None:
        raise RuntimeError("cannot export a NullTracer; pass a real Tracer")


#: Shared disabled tracer — the default everywhere instrumentation exists.
NULL_TRACER = NullTracer()


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a JSON-lines Chrome trace back into a list of events.

    Also accepts the array form (``[{...}, ...]``) that Chrome's
    ``chrome://tracing`` *exports*, so round-tripped files load too.
    """
    events: list[dict[str, Any]] = []
    with open(path) as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        loaded = json.loads(stripped)
        if not isinstance(loaded, list):
            raise ValueError(f"{path}: expected a JSON array of trace events")
        events = [e for e in loaded if isinstance(e, dict)]
    else:
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace line: {exc}") from exc
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: trace line is not an object")
            events.append(event)
    return events


def iter_complete_events(events: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    """Yield only well-formed "X" (complete) events with numeric ts/dur."""
    for e in events:
        if e.get("ph") != "X":
            continue
        if not isinstance(e.get("ts"), (int, float)):
            continue
        if not isinstance(e.get("dur"), (int, float)):
            continue
        yield e

"""Perf snapshots and the regression gate: ``BENCH_<name>.json``.

A bench file is a compact, diffable summary of one run, derived from
telemetry (the trace report and metrics registry) rather than ad-hoc
timers:

- ``context`` — what was run (dataset, algorithm, partitions, scale).
  Two benches only compare if their contexts match exactly; comparing
  across contexts is a category error, reported as exit code 2 so CI
  distinguishes "misconfigured gate" from "regression".
- ``measures`` — lower-is-better continuous quantities (executor
  total/max seconds, merge seconds, peak RSS).  Compared with a
  relative tolerance plus a small absolute floor, because a 3 ms phase
  jittering to 4 ms is noise, not a 33% regression.
- ``counts`` — exact quantities (clusters, broadcast/halo bytes).  The
  run is deterministic, so any drift here is a behaviour change and
  fails the gate regardless of tolerance.

``repro perf run`` writes these; ``repro perf diff`` compares two and
exits nonzero on regression — the CI perf gate is exactly that diff
against a committed baseline.
"""

from __future__ import annotations

import json
from typing import Any

from .report import TraceReport

__all__ = [
    "build_bench",
    "diff_benches",
    "format_diff",
    "load_bench",
    "write_bench",
]

#: Absolute slack added on top of the relative tolerance, per unit
#: suffix: sub-floor deltas are never regressions.
_ABS_FLOORS = {"_s": 0.005, "_bytes": 16 * 1024 * 1024}

#: Bench schema version; bumped when keys change meaning.
_VERSION = 1


def build_bench(
    name: str,
    context: dict[str, Any],
    report: TraceReport,
    registry: Any = None,
    extra_measures: dict[str, float] | None = None,
    extra_counts: dict[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble a bench dict from a run's telemetry."""
    measures: dict[str, float] = {
        "wall_s": round(report.wall_s, 6),
        "executor_total_s": round(report.executor_total_s, 6),
        "executor_max_s": round(report.executor_max_s, 6),
        "merge_s": round(report.driver_phases.get("driver.merge", 0.0), 6),
        "kdtree_build_s": round(report.kdtree_build_s, 6),
    }
    counts: dict[str, int] = {
        "num_executor_spans": report.num_executor_spans,
        "total_partials": report.total_partials,
        "broadcast_bytes": report.broadcast_bytes,
    }
    if registry is not None:
        from .profile import max_peak_rss

        rss = max_peak_rss(registry)
        if rss:
            measures["peak_rss_bytes"] = float(rss)
        halo = registry.get("repro_cell_halo_bytes")
        if halo is not None:
            counts["halo_bytes"] = int(halo.value())
        collect = registry.get("repro_driver_collect_bytes")
        if collect is not None:
            # Canonical pickled size of the merge payload the driver
            # collected — O(points) for merge_mode="partials", O(edges +
            # partials) for "edges".  Deterministic, so compared exactly.
            counts["collect_bytes"] = int(collect.value())
    if extra_measures:
        measures.update({k: round(v, 6) for k, v in extra_measures.items()})
    if extra_counts:
        counts.update(extra_counts)
    return {
        "version": _VERSION,
        "name": name,
        "context": context,
        "measures": measures,
        "counts": counts,
    }


def write_bench(path: str, bench: dict[str, Any]) -> None:
    """Write a bench file (stable key order, newline-terminated)."""
    with open(path, "w") as f:
        json.dump(bench, f, indent=2, sort_keys=True)
        f.write("\n")


def load_bench(path: str) -> dict[str, Any]:
    """Read a bench file back, validating the minimal shape."""
    with open(path) as f:
        bench = json.load(f)
    for key in ("name", "context", "measures", "counts"):
        if key not in bench:
            raise ValueError(f"{path}: not a bench file (missing {key!r})")
    return bench


def _floor_for(measure: str) -> float:
    for suffix, floor in _ABS_FLOORS.items():
        if measure.endswith(suffix):
            return floor
    return 0.0


def diff_benches(
    base: dict[str, Any],
    cur: dict[str, Any],
    tolerance: float = 0.3,
) -> tuple[int, list[str]]:
    """Compare two benches; returns (exit_code, report_lines).

    Exit codes: 0 = within tolerance, 1 = regression (a measure grew
    past tolerance, or a count changed), 2 = benches are not comparable
    (different context).
    """
    lines: list[str] = []
    if base["context"] != cur["context"]:
        lines.append("benches are not comparable: context differs")
        for k in sorted(set(base["context"]) | set(cur["context"])):
            bv, cv = base["context"].get(k), cur["context"].get(k)
            if bv != cv:
                lines.append(f"  {k}: baseline={bv!r} current={cv!r}")
        return 2, lines
    code = 0
    lines.append(
        f"perf diff: {base['name']} -> {cur['name']} "
        f"(tolerance {tolerance:.0%})"
    )
    for measure in sorted(set(base["measures"]) | set(cur["measures"])):
        bv = base["measures"].get(measure)
        cv = cur["measures"].get(measure)
        if bv is None or cv is None:
            lines.append(f"  ~ {measure:<20} only in "
                         f"{'current' if bv is None else 'baseline'}; skipped")
            continue
        delta = cv - bv
        rel = delta / bv if bv > 0 else 0.0
        limit = bv * tolerance + _floor_for(measure)
        status = "ok"
        if delta > limit:
            status = "REGRESSION"
            code = 1
        elif delta < -limit:
            status = "improved"
        lines.append(
            f"  {'!' if status == 'REGRESSION' else ' '} {measure:<20} "
            f"{bv:>12.6g} -> {cv:>12.6g}  ({rel:+.1%})  {status}"
        )
    for count in sorted(set(base["counts"]) | set(cur["counts"])):
        bv = base["counts"].get(count)
        cv = cur["counts"].get(count)
        if bv == cv:
            lines.append(f"    {count:<20} {bv} (exact)")
        else:
            code = max(code, 1)
            lines.append(
                f"  ! {count:<20} {bv} -> {cv}  COUNT CHANGED "
                "(deterministic quantity drifted)"
            )
    lines.append("result: " + ("PASS" if code == 0 else "FAIL"))
    return code, lines


def format_diff(code: int, lines: list[str]) -> str:
    """Join diff lines for printing."""
    return "\n".join(lines)

"""Trace reports: the paper's headline splits computed from spans.

The whole point of the span layer is that Figure 5 (kd-tree fraction),
Figure 6 (driver vs executor split, partial-cluster counts) and the
merge-graph statistics fall out of one trace instead of ad-hoc timers:

- **kd-tree fraction** — ``driver.kdtree_build`` over the whole run
  (build + executor work + merge), the exact denominator Figure 5 uses;
- **driver vs executor** — sum of top-level ``cat="driver"`` spans vs
  the ``cat="executor"`` per-partition expansion spans (their max is
  the parallel executor wall-clock, paper configuration one partition
  per core);
- **partials / merge stats** — carried as labels on the expansion and
  ``driver.merge`` spans.

`TraceReport.from_events` consumes the Chrome trace events written by
`Tracer.write_jsonl`, so it works identically on a live tracer
(``TraceReport.from_tracer``) and on a file read back from disk
(``repro trace t.jsonl``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .spans import Tracer, iter_complete_events

__all__ = [
    "TraceReport",
    "format_report",
    "format_skew_report",
    "render_timeline",
]

#: Span names considered driver-side algorithm phases.  Anything with
#: ``cat="driver"`` counts; this ordering is only used for display.
DRIVER_PHASE_ORDER = (
    "driver.load",
    "driver.spatial_reorder",
    "driver.kdtree_build",
    "driver.setup",
    "driver.broadcast",
    "driver.accumulator_drain",
    "driver.merge",
    "driver.apply_labels",
    "driver.relabel",
)


def _contains(outer: dict[str, Any], inner: dict[str, Any]) -> bool:
    """True iff ``outer`` strictly contains ``inner`` in time on one lane."""
    if outer is inner or outer.get("tid") != inner.get("tid"):
        return False
    o0, o1 = outer["ts"], outer["ts"] + outer["dur"]
    i0, i1 = inner["ts"], inner["ts"] + inner["dur"]
    return o0 <= i0 and i1 <= o1 and (o1 - o0) > (i1 - i0)


@dataclass
class TraceReport:
    """Headline numbers extracted from one run's span trace."""

    wall_s: float = 0.0               # trace extent: max end − min start
    kdtree_build_s: float = 0.0
    driver_s: float = 0.0             # top-level cat="driver" spans
    executor_total_s: float = 0.0     # sum of cat="executor" spans
    executor_max_s: float = 0.0       # slowest executor span
    engine_task_s: float = 0.0        # cat="engine" task-attempt spans
    num_executor_spans: int = 0
    num_spans: int = 0                # all complete events folded in
    driver_phases: dict[str, float] = field(default_factory=dict)
    partials_by_partition: dict[int, int] = field(default_factory=dict)
    merge_stats: dict[str, Any] = field(default_factory=dict)
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    broadcast_bytes: int = 0
    # -- distributed telemetry (PR 7): worker sub-phases + skew ------------
    worker_phase_s: dict[str, float] = field(default_factory=dict)
    worker_pids: list[int] = field(default_factory=list)
    # partition -> winning successful attempt's seconds / worker pid
    partition_costs: dict[int, float] = field(default_factory=dict)
    partition_pids: dict[int, int] = field(default_factory=dict)
    halo_stats: dict[str, Any] = field(default_factory=dict)

    # -- derived ------------------------------------------------------------
    @property
    def whole_s(self) -> float:
        """Figure 5's denominator: build + executor work + merge."""
        return (
            self.kdtree_build_s
            + self.executor_total_s
            + self.driver_phases.get("driver.merge", 0.0)
        )

    @property
    def kdtree_fraction(self) -> float:
        """kd-tree build / whole DBSCAN (Figure 5)."""
        return self.kdtree_build_s / self.whole_s if self.whole_s else 0.0

    @property
    def kdtree_permille(self) -> float:
        """Figure 5's unit: per-mille of the whole run."""
        return 1000.0 * self.kdtree_fraction

    @property
    def total_partials(self) -> int:
        """Partial clusters across all partitions (Figure 6)."""
        return sum(self.partials_by_partition.values())

    @property
    def is_empty(self) -> bool:
        """True when no complete span event was folded in (an empty
        trace, or one holding only instant/metadata events)."""
        return self.num_spans == 0

    @property
    def imbalance_ratio(self) -> float:
        """Skew: slowest partition over the mean partition cost.

        1.0 is perfectly balanced; a ratio of r means the parallel
        executor wall-clock is r× the balanced ideal — the number the
        paper's Fig 8 speedup losses reduce to.
        """
        costs = list(self.partition_costs.values())
        if not costs:
            return 0.0
        mean = sum(costs) / len(costs)
        return max(costs) / mean if mean > 0 else 0.0

    @property
    def makespan_s(self) -> float:
        """Critical path at one partition per core: the slowest
        partition's winning task time bounds the stage wall-clock."""
        return max(self.partition_costs.values(), default=0.0)

    @property
    def straggler_partition(self) -> int | None:
        """Partition on the critical path (None without task costs)."""
        if not self.partition_costs:
            return None
        return max(self.partition_costs, key=self.partition_costs.__getitem__)

    @property
    def halo_overhead_fraction(self) -> float:
        """Cell plan: replicated halo bytes over total shipped payload."""
        halo = float(self.halo_stats.get("halo_nbytes", 0))
        payload = float(self.halo_stats.get("payload_nbytes", 0))
        return halo / payload if payload > 0 else 0.0

    @classmethod
    def from_events(cls, events: list[dict[str, Any]]) -> "TraceReport":
        """Fold Chrome trace events into a report.

        Total on an empty (or instant-only) trace: returns the explicit
        empty report (``is_empty``) rather than raising.
        """
        xs = list(iter_complete_events(events))
        report = cls()
        if not xs:
            return report
        min_start = min(e["ts"] for e in xs)
        max_end = max(e["ts"] + e["dur"] for e in xs)
        # Extent of the trace, not distance from t=0: merged worker
        # traces (and any trimmed trace) legitimately start after 0.
        report.wall_s = (max_end - min_start) / 1e6
        report.num_spans = len(xs)
        driver = [e for e in xs if e.get("cat") == "driver"]
        # partition -> durations of successful engine task attempts; the
        # winning (fastest) one defines the partition's cost, matching
        # StageMetrics.task_durations under speculation.
        attempt_costs: dict[int, list[float]] = {}
        for e in xs:
            name = e.get("name", "?")
            cat = e.get("cat", "")
            dur_s = e["dur"] / 1e6
            args = e.get("args") or {}
            if cat == "driver":
                # Sum only top-level driver spans: a nested driver span
                # (driver.broadcast inside driver.setup) is already
                # counted by its parent.
                if not any(_contains(o, e) for o in driver):
                    report.driver_s += dur_s
                report.driver_phases[name] = (
                    report.driver_phases.get(name, 0.0) + dur_s
                )
                if name == "driver.kdtree_build":
                    report.kdtree_build_s += dur_s
                if name == "driver.merge":
                    report.merge_stats = {
                        k: v for k, v in args.items()
                        if k not in ("cpu_ms", "depth")
                    }
                if name == "driver.broadcast":
                    report.broadcast_bytes += int(args.get("nbytes", 0))
                if name == "driver.setup":
                    for k in ("halo_nbytes", "payload_nbytes", "halo_points"):
                        if k in args:
                            report.halo_stats[k] = args[k]
            elif cat == "executor":
                report.executor_total_s += dur_s
                report.executor_max_s = max(report.executor_max_s, dur_s)
                report.num_executor_spans += 1
                if "partition" in args and "partials" in args:
                    p = int(args["partition"])
                    report.partials_by_partition[p] = (
                        report.partials_by_partition.get(p, 0)
                        + int(args["partials"])
                    )
            elif cat == "engine":
                if name.startswith("task"):
                    report.engine_task_s += dur_s
                    if "partition" in args and args.get("succeeded", True):
                        p = int(args["partition"])
                        attempt_costs.setdefault(p, []).append(dur_s)
                        pid = int(args.get("worker_pid", 0))
                        if pid:
                            report.partition_pids[p] = pid
                report.shuffle_bytes_written += int(
                    args.get("shuffle_bytes_written", 0)
                )
                report.shuffle_bytes_read += int(args.get("shuffle_bytes_read", 0))
            elif cat == "worker":
                report.worker_phase_s[name] = (
                    report.worker_phase_s.get(name, 0.0) + dur_s
                )
                pid = int(e.get("pid", 0))
                if pid and pid not in report.worker_pids:
                    report.worker_pids.append(pid)
        report.partition_costs = {
            p: min(costs) for p, costs in sorted(attempt_costs.items())
        }
        report.worker_pids.sort()
        return report

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceReport":
        """Report directly off a live tracer's spans."""
        return cls.from_events(tracer.to_events())


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def format_report(report: TraceReport) -> str:
    """Render the headline splits as text."""
    lines = ["=== trace report ==="]
    if report.is_empty:
        lines.append("(no spans)")
        return "\n".join(lines)
    lines.append(f"wall span              {_fmt_s(report.wall_s)}")
    lines.append(
        f"kd-tree build          {_fmt_s(report.kdtree_build_s)}  "
        f"({report.kdtree_permille:.2f} permille of whole — Fig 5)"
    )
    lines.append(
        f"driver time            {_fmt_s(report.driver_s)}  "
        f"(top-level driver phases — Fig 6)"
    )
    lines.append(
        f"executor time          {_fmt_s(report.executor_total_s)} total / "
        f"{_fmt_s(report.executor_max_s)} max over "
        f"{report.num_executor_spans} partition tasks"
    )
    if report.engine_task_s:
        lines.append(f"engine task attempts   {_fmt_s(report.engine_task_s)}")
    if report.shuffle_bytes_written or report.shuffle_bytes_read:
        lines.append(
            f"shuffle bytes          {report.shuffle_bytes_written} written / "
            f"{report.shuffle_bytes_read} read"
        )
    if report.broadcast_bytes:
        lines.append(f"broadcast bytes        {report.broadcast_bytes}")
    ordered = [n for n in DRIVER_PHASE_ORDER if n in report.driver_phases]
    ordered += [n for n in sorted(report.driver_phases) if n not in ordered]
    if ordered:
        lines.append("")
        lines.append("driver phases:")
        for name in ordered:
            lines.append(f"  {name:<28} {_fmt_s(report.driver_phases[name])}")
    if report.partials_by_partition:
        lines.append("")
        lines.append(
            f"partial clusters: {report.total_partials} total "
            f"across {len(report.partials_by_partition)} partitions"
        )
        for p in sorted(report.partials_by_partition):
            lines.append(f"  partition {p:<4} {report.partials_by_partition[p]}")
    if report.worker_phase_s:
        lines.append("")
        pids = ", ".join(str(p) for p in report.worker_pids) or "driver"
        lines.append(f"worker task phases (pids: {pids}):")
        for name in sorted(report.worker_phase_s):
            lines.append(
                f"  {name:<28} {_fmt_s(report.worker_phase_s[name])}"
            )
    if report.merge_stats:
        lines.append("")
        lines.append("merge: " + ", ".join(
            f"{k}={v}" for k, v in sorted(report.merge_stats.items())
        ))
    return "\n".join(lines)


def format_skew_report(report: TraceReport, width: int = 40) -> str:
    """Per-partition cost table with skew/straggler diagnostics.

    Partition costs come from the winning successful task attempt of
    each partition (engine spans), so the table reflects what actually
    bounded the stage — speculation losers and retries are excluded.
    """
    lines = ["=== skew report ==="]
    if not report.partition_costs:
        lines.append("(no per-partition task spans in trace)")
        return "\n".join(lines)
    costs = report.partition_costs
    worst = max(costs.values())
    mean = sum(costs.values()) / len(costs)
    lines.append(
        f"{len(costs)} partitions, makespan {_fmt_s(report.makespan_s)} "
        f"(critical path: partition {report.straggler_partition})"
    )
    lines.append(
        f"imbalance ratio        {report.imbalance_ratio:.2f}x "
        f"(max/mean; 1.00x = balanced)"
    )
    lines.append(
        f"balanced ideal         {_fmt_s(mean)} per partition "
        f"-> {_fmt_s(worst - mean)} lost to skew"
    )
    lines.append("")
    lines.append(f"{'partition':<10} {'task time':>10} {'pid':>8}  cost")
    for p, cost in costs.items():
        bar = "#" * max(1, int(width * cost / worst)) if worst > 0 else ""
        pid = report.partition_pids.get(p, 0) or "-"
        flag = "  <- straggler" if p == report.straggler_partition else ""
        lines.append(
            f"{p:<10} {_fmt_s(cost):>10} {pid!s:>8}  {bar}{flag}"
        )
    if report.worker_phase_s:
        lines.append("")
        lines.append("worker phase totals:")
        for name in sorted(report.worker_phase_s):
            lines.append(
                f"  {name:<28} {_fmt_s(report.worker_phase_s[name])}"
            )
    if report.halo_stats:
        lines.append("")
        halo = int(report.halo_stats.get("halo_nbytes", 0))
        payload = int(report.halo_stats.get("payload_nbytes", 0))
        lines.append(
            f"halo overhead: {halo} of {payload} payload bytes replicated "
            f"({100.0 * report.halo_overhead_fraction:.1f}%)"
        )
    return "\n".join(lines)


def render_timeline(events: list[dict[str, Any]], width: int = 60) -> str:
    """ASCII timeline: one row per span, bars proportional to duration.

    Rows are grouped by lane (``tid``) and ordered by start time;
    nesting (from the exported ``depth`` arg) indents the span name.
    """
    xs = sorted(
        iter_complete_events(events),
        key=lambda e: (
            e.get("tid", "driver") != "driver", str(e.get("tid", "driver")),
            e["ts"],
        ),
    )
    if not xs:
        return "(no spans)"
    t1 = max(e["ts"] + e["dur"] for e in xs)
    t1 = max(t1, 1e-9)
    name_w = min(
        44,
        max(
            len("  " * int((e.get("args") or {}).get("depth", 0)) + e.get("name", "?"))
            for e in xs
        ),
    )
    lines = [f"timeline ({_fmt_s(t1 / 1e6)} total, {len(xs)} spans)"]
    last_tid = None
    for e in xs:
        tid = str(e.get("tid", "driver"))
        if tid != last_tid:
            lines.append(f"-- lane {tid} --")
            last_tid = tid
        depth = int((e.get("args") or {}).get("depth", 0))
        label = ("  " * depth + e.get("name", "?"))[:name_w]
        lo = int(width * e["ts"] / t1)
        hi = int(width * (e["ts"] + e["dur"]) / t1)
        hi = max(hi, lo + 1)
        bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
        lines.append(f"{label:<{name_w}} |{bar}| {_fmt_s(e['dur'] / 1e6)}")
    return "\n".join(lines)

"""Trace reports: the paper's headline splits computed from spans.

The whole point of the span layer is that Figure 5 (kd-tree fraction),
Figure 6 (driver vs executor split, partial-cluster counts) and the
merge-graph statistics fall out of one trace instead of ad-hoc timers:

- **kd-tree fraction** — ``driver.kdtree_build`` over the whole run
  (build + executor work + merge), the exact denominator Figure 5 uses;
- **driver vs executor** — sum of top-level ``cat="driver"`` spans vs
  the ``cat="executor"`` per-partition expansion spans (their max is
  the parallel executor wall-clock, paper configuration one partition
  per core);
- **partials / merge stats** — carried as labels on the expansion and
  ``driver.merge`` spans.

`TraceReport.from_events` consumes the Chrome trace events written by
`Tracer.write_jsonl`, so it works identically on a live tracer
(``TraceReport.from_tracer``) and on a file read back from disk
(``repro trace t.jsonl``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .spans import Tracer, iter_complete_events

__all__ = ["TraceReport", "format_report", "render_timeline"]

#: Span names considered driver-side algorithm phases.  Anything with
#: ``cat="driver"`` counts; this ordering is only used for display.
DRIVER_PHASE_ORDER = (
    "driver.load",
    "driver.spatial_reorder",
    "driver.kdtree_build",
    "driver.setup",
    "driver.broadcast",
    "driver.accumulator_drain",
    "driver.merge",
    "driver.relabel",
)


def _contains(outer: dict[str, Any], inner: dict[str, Any]) -> bool:
    """True iff ``outer`` strictly contains ``inner`` in time on one lane."""
    if outer is inner or outer.get("tid") != inner.get("tid"):
        return False
    o0, o1 = outer["ts"], outer["ts"] + outer["dur"]
    i0, i1 = inner["ts"], inner["ts"] + inner["dur"]
    return o0 <= i0 and i1 <= o1 and (o1 - o0) > (i1 - i0)


@dataclass
class TraceReport:
    """Headline numbers extracted from one run's span trace."""

    wall_s: float = 0.0               # outermost span's duration
    kdtree_build_s: float = 0.0
    driver_s: float = 0.0             # top-level cat="driver" spans
    executor_total_s: float = 0.0     # sum of cat="executor" spans
    executor_max_s: float = 0.0       # slowest executor span
    engine_task_s: float = 0.0        # cat="engine" task-attempt spans
    num_executor_spans: int = 0
    driver_phases: dict[str, float] = field(default_factory=dict)
    partials_by_partition: dict[int, int] = field(default_factory=dict)
    merge_stats: dict[str, Any] = field(default_factory=dict)
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    broadcast_bytes: int = 0

    # -- derived ------------------------------------------------------------
    @property
    def whole_s(self) -> float:
        """Figure 5's denominator: build + executor work + merge."""
        return (
            self.kdtree_build_s
            + self.executor_total_s
            + self.driver_phases.get("driver.merge", 0.0)
        )

    @property
    def kdtree_fraction(self) -> float:
        """kd-tree build / whole DBSCAN (Figure 5)."""
        return self.kdtree_build_s / self.whole_s if self.whole_s else 0.0

    @property
    def kdtree_permille(self) -> float:
        """Figure 5's unit: per-mille of the whole run."""
        return 1000.0 * self.kdtree_fraction

    @property
    def total_partials(self) -> int:
        """Partial clusters across all partitions (Figure 6)."""
        return sum(self.partials_by_partition.values())

    @classmethod
    def from_events(cls, events: list[dict[str, Any]]) -> "TraceReport":
        """Fold Chrome trace events into a report."""
        xs = list(iter_complete_events(events))
        report = cls()
        driver = [e for e in xs if e.get("cat") == "driver"]
        for e in xs:
            name = e.get("name", "?")
            cat = e.get("cat", "")
            dur_s = e["dur"] / 1e6
            args = e.get("args") or {}
            if cat == "driver":
                # Sum only top-level driver spans: a nested driver span
                # (driver.broadcast inside driver.setup) is already
                # counted by its parent.
                if not any(_contains(o, e) for o in driver):
                    report.driver_s += dur_s
                report.driver_phases[name] = (
                    report.driver_phases.get(name, 0.0) + dur_s
                )
                if name == "driver.kdtree_build":
                    report.kdtree_build_s += dur_s
                if name == "driver.merge":
                    report.merge_stats = {
                        k: v for k, v in args.items()
                        if k not in ("cpu_ms", "depth")
                    }
                if name == "driver.broadcast":
                    report.broadcast_bytes += int(args.get("nbytes", 0))
            elif cat == "executor":
                report.executor_total_s += dur_s
                report.executor_max_s = max(report.executor_max_s, dur_s)
                report.num_executor_spans += 1
                if "partition" in args and "partials" in args:
                    p = int(args["partition"])
                    report.partials_by_partition[p] = (
                        report.partials_by_partition.get(p, 0)
                        + int(args["partials"])
                    )
            elif cat == "engine":
                if name.startswith("task"):
                    report.engine_task_s += dur_s
                report.shuffle_bytes_written += int(
                    args.get("shuffle_bytes_written", 0)
                )
                report.shuffle_bytes_read += int(args.get("shuffle_bytes_read", 0))
            span_end = (e["ts"] + e["dur"]) / 1e6
            report.wall_s = max(report.wall_s, span_end)
        return report

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceReport":
        """Report directly off a live tracer's spans."""
        return cls.from_events(tracer.to_events())


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def format_report(report: TraceReport) -> str:
    """Render the headline splits as text."""
    lines = ["=== trace report ==="]
    lines.append(f"wall span              {_fmt_s(report.wall_s)}")
    lines.append(
        f"kd-tree build          {_fmt_s(report.kdtree_build_s)}  "
        f"({report.kdtree_permille:.2f} permille of whole — Fig 5)"
    )
    lines.append(
        f"driver time            {_fmt_s(report.driver_s)}  "
        f"(top-level driver phases — Fig 6)"
    )
    lines.append(
        f"executor time          {_fmt_s(report.executor_total_s)} total / "
        f"{_fmt_s(report.executor_max_s)} max over "
        f"{report.num_executor_spans} partition tasks"
    )
    if report.engine_task_s:
        lines.append(f"engine task attempts   {_fmt_s(report.engine_task_s)}")
    if report.shuffle_bytes_written or report.shuffle_bytes_read:
        lines.append(
            f"shuffle bytes          {report.shuffle_bytes_written} written / "
            f"{report.shuffle_bytes_read} read"
        )
    if report.broadcast_bytes:
        lines.append(f"broadcast bytes        {report.broadcast_bytes}")
    ordered = [n for n in DRIVER_PHASE_ORDER if n in report.driver_phases]
    ordered += [n for n in sorted(report.driver_phases) if n not in ordered]
    if ordered:
        lines.append("")
        lines.append("driver phases:")
        for name in ordered:
            lines.append(f"  {name:<28} {_fmt_s(report.driver_phases[name])}")
    if report.partials_by_partition:
        lines.append("")
        lines.append(
            f"partial clusters: {report.total_partials} total "
            f"across {len(report.partials_by_partition)} partitions"
        )
        for p in sorted(report.partials_by_partition):
            lines.append(f"  partition {p:<4} {report.partials_by_partition[p]}")
    if report.merge_stats:
        lines.append("")
        lines.append("merge: " + ", ".join(
            f"{k}={v}" for k, v in sorted(report.merge_stats.items())
        ))
    return "\n".join(lines)


def render_timeline(events: list[dict[str, Any]], width: int = 60) -> str:
    """ASCII timeline: one row per span, bars proportional to duration.

    Rows are grouped by lane (``tid``) and ordered by start time;
    nesting (from the exported ``depth`` arg) indents the span name.
    """
    xs = sorted(iter_complete_events(events), key=lambda e: (e["tid"] != "driver", str(e["tid"]), e["ts"]))
    if not xs:
        return "(no spans)"
    t1 = max(e["ts"] + e["dur"] for e in xs)
    t1 = max(t1, 1e-9)
    name_w = min(
        44,
        max(
            len("  " * int((e.get("args") or {}).get("depth", 0)) + e.get("name", "?"))
            for e in xs
        ),
    )
    lines = [f"timeline ({_fmt_s(t1 / 1e6)} total, {len(xs)} spans)"]
    last_tid = None
    for e in xs:
        tid = str(e["tid"])
        if tid != last_tid:
            lines.append(f"-- lane {tid} --")
            last_tid = tid
        depth = int((e.get("args") or {}).get("depth", 0))
        label = ("  " * depth + e.get("name", "?"))[:name_w]
        lo = int(width * e["ts"] / t1)
        hi = int(width * (e["ts"] + e["dur"]) / t1)
        hi = max(hi, lo + 1)
        bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
        lines.append(f"{label:<{name_w}} |{bar}| {_fmt_s(e['dur'] / 1e6)}")
    return "\n".join(lines)

"""Opt-in per-task resource profiling: wall vs CPU, peak RSS, allocations.

`TaskProfiler` brackets one task body inside the worker and produces a
picklable `TaskResourceProfile` that rides back on the `TaskOutcome`
next to the span telemetry:

- **wall vs CPU** — ``time.perf_counter`` against ``time.process_time``;
  a task whose CPU time is far below its wall time is waiting (GIL,
  page cache, pickle I/O), not computing.
- **peak RSS** — ``resource.getrusage(RUSAGE_SELF).ru_maxrss``, the OS
  high-water mark for the whole process.  It is monotonic per process,
  so per-task deltas are only meaningful for the *first* task to touch
  a new peak; the report layer aggregates with max, not sum.  Linux
  reports KiB, macOS bytes — normalised to bytes here.  Platforms
  without the ``resource`` module (Windows) degrade to 0.
- **allocation peak** — ``tracemalloc`` traced-memory high-water mark,
  opt-in separately (``profile_alloc``) because instrumenting the
  allocator costs ~2× on allocation-heavy code, far above the ≤5%
  budget of the default profile.  Worker processes may run several
  profiled tasks concurrently under the threads backend, so start/stop
  is refcounted behind a module lock, and tracing started by someone
  else (the user's own tracemalloc session) is never stopped.

Everything here measures the *environment* of a task, not its inputs;
none of it feeds task output, so the clock reads are lint-exempt (see
the scoped DET001 allowances).
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any

try:
    import resource
except ImportError:  # pragma: no cover - not available on Windows
    resource = None  # type: ignore[assignment]

__all__ = [
    "TaskProfiler",
    "TaskResourceProfile",
    "max_peak_rss",
    "peak_rss_bytes",
    "record_task_profile",
]

# tracemalloc is process-global: refcount concurrent profiled tasks
# (threads backend) so the first starts tracing and the last stops it.
_TRACEMALLOC_LOCK = threading.Lock()
_tracemalloc_users = 0
_tracemalloc_external = False


def peak_rss_bytes() -> int:
    """Process peak resident set size in bytes (0 where unsupported)."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024  # Linux reports KiB; macOS reports bytes
    return int(peak)


@dataclass
class TaskResourceProfile:
    """Resource footprint of one task attempt (picklable)."""

    wall_s: float = 0.0
    cpu_s: float = 0.0
    max_rss_bytes: int = 0       # process high-water mark after the task
    alloc_peak_bytes: int = 0    # tracemalloc peak during the task
    alloc_tracked: bool = False  # False when profile_alloc was off


class TaskProfiler:
    """Measures one task body; use ``start()`` / ``stop()`` around it.

    ``stop()`` is safe to call on the failure path too — the profile of
    a task that raised is still shipped, which is exactly when the
    memory numbers are most interesting.
    """

    def __init__(self, alloc: bool = False):
        self._alloc = alloc
        self._t0 = 0.0
        self._cpu0 = 0.0
        self._started = False

    def start(self) -> None:
        global _tracemalloc_users, _tracemalloc_external
        if self._alloc:
            with _TRACEMALLOC_LOCK:
                if _tracemalloc_users == 0:
                    # Respect a session the user started themselves.
                    _tracemalloc_external = tracemalloc.is_tracing()
                    if not _tracemalloc_external:
                        tracemalloc.start()
                _tracemalloc_users += 1
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._started = True

    def stop(self) -> TaskResourceProfile:
        if not self._started:
            return TaskResourceProfile()
        profile = TaskResourceProfile(
            wall_s=time.perf_counter() - self._t0,
            cpu_s=time.process_time() - self._cpu0,
            max_rss_bytes=peak_rss_bytes(),
        )
        if self._alloc:
            global _tracemalloc_users
            with _TRACEMALLOC_LOCK:
                if tracemalloc.is_tracing():
                    _, peak = tracemalloc.get_traced_memory()
                    profile.alloc_peak_bytes = int(peak)
                    profile.alloc_tracked = True
                _tracemalloc_users -= 1
                if _tracemalloc_users == 0 and not _tracemalloc_external:
                    tracemalloc.stop()
        self._started = False
        return profile


def record_task_profile(
    registry: Any,
    profile: TaskResourceProfile,
    *,
    stage: int,
    partition: int,
) -> None:
    """Aggregate one task's resource profile into the metrics registry.

    CPU time is a histogram per stage (distribution matters for skew);
    memory peaks are gauges aggregated with max — RSS is a process
    high-water mark and summing it would double-count.
    """
    registry.histogram(
        "repro_task_cpu_seconds",
        "CPU seconds per task attempt.",
        ("stage",),
    ).observe(profile.cpu_s, stage=str(stage))
    if profile.max_rss_bytes:
        gauge = registry.gauge(
            "repro_task_peak_rss_bytes",
            "Peak worker RSS observed after a task (bytes, max-aggregated).",
            ("stage", "partition"),
        )
        labels = {"stage": str(stage), "partition": str(partition)}
        if profile.max_rss_bytes > gauge.value(**labels):
            gauge.set(profile.max_rss_bytes, **labels)
    if profile.alloc_tracked:
        gauge = registry.gauge(
            "repro_task_alloc_peak_bytes",
            "Peak tracemalloc-traced allocation during a task (bytes, "
            "max-aggregated).",
            ("stage", "partition"),
        )
        labels = {"stage": str(stage), "partition": str(partition)}
        if profile.alloc_peak_bytes > gauge.value(**labels):
            gauge.set(profile.alloc_peak_bytes, **labels)


def max_peak_rss(registry: Any) -> int:
    """Largest per-task RSS peak recorded in the registry (0 if none)."""
    gauge = registry.get("repro_task_peak_rss_bytes")
    if gauge is None:
        return 0
    return int(max(gauge._values.values(), default=0))

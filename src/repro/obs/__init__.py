"""Observability: structured span tracing, a metrics registry, and
trace-driven reports.

Three pieces (DESIGN.md §7):

- `spans` — `Tracer` / `Span`: nestable timed regions with labels,
  exported as Chrome trace-event JSON lines (Perfetto-loadable).  The
  module singleton `NULL_TRACER` is the zero-overhead default.
- `registry` — `MetricsRegistry` of labelled Counter/Gauge/Histogram
  instruments with Prometheus text exposition; `TaskMetrics` and
  `OpCounters` bridge in via `record_task_metrics`/`record_op_counters`.
- `report` — computes the paper's headline splits (Fig 5 kd-tree
  fraction, Fig 6 driver/executor time and partial-cluster counts,
  merge stats) directly from a trace, plus a text timeline renderer.
"""

from .spans import NULL_TRACER, NullTracer, Span, Tracer, load_trace
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    record_op_counters,
    record_task_metrics,
)
from .report import TraceReport, format_report, render_timeline

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TraceReport",
    "Tracer",
    "format_report",
    "load_trace",
    "parse_exposition",
    "record_op_counters",
    "record_task_metrics",
    "render_timeline",
]

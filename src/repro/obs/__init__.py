"""Observability: structured span tracing, a metrics registry, and
trace-driven reports.

Six pieces (DESIGN.md §7):

- `spans` — `Tracer` / `Span`: nestable timed regions with labels,
  exported as Chrome trace-event JSON lines (Perfetto-loadable).  The
  module singleton `NULL_TRACER` is the zero-overhead default.
- `registry` — `MetricsRegistry` of labelled Counter/Gauge/Histogram
  instruments with Prometheus text exposition; `TaskMetrics` and
  `OpCounters` bridge in via `record_task_metrics`/`record_op_counters`.
- `report` — computes the paper's headline splits (Fig 5 kd-tree
  fraction, Fig 6 driver/executor time and partial-cluster counts,
  merge stats) directly from a trace, plus skew/straggler diagnostics
  and a text timeline renderer.
- `collect` — the distributed half: a picklable `WorkerTelemetry`
  buffer created inside executor workers, shipped back on the
  `TaskOutcome`, and merged into the driver tracer with worker pids
  preserved and timestamps rebased to the driver clock.
- `profile` — opt-in per-task resource profiling (wall vs CPU, peak
  RSS, tracemalloc allocation peak) aggregated into the registry.
- `perf` — compact ``BENCH_<name>.json`` snapshots and the regression
  diff behind the CI perf gate.
"""

from .spans import NULL_TRACER, NullTracer, Span, Tracer, load_trace
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    record_op_counters,
    record_task_metrics,
)
from .report import (
    TraceReport,
    format_report,
    format_skew_report,
    render_timeline,
)
from .collect import WorkerTelemetry, merge_telemetry, task_span
from .profile import TaskProfiler, TaskResourceProfile, record_task_profile
from .perf import build_bench, diff_benches, load_bench, write_bench

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TaskProfiler",
    "TaskResourceProfile",
    "TraceReport",
    "Tracer",
    "WorkerTelemetry",
    "build_bench",
    "diff_benches",
    "format_report",
    "format_skew_report",
    "load_bench",
    "load_trace",
    "merge_telemetry",
    "parse_exposition",
    "record_op_counters",
    "record_task_metrics",
    "record_task_profile",
    "render_timeline",
    "task_span",
    "write_bench",
]

"""Metrics registry: labelled Counter/Gauge/Histogram instruments with
Prometheus text exposition.

The registry is the numeric counterpart of `repro.obs.spans`: spans
answer *where did the time go*, instruments answer *how much of X
happened*.  The engine's `TaskMetrics` and the algorithm's `OpCounters`
are bridged in through `record_task_metrics` / `record_op_counters`, so
benchmarks and the CLI read one store instead of re-deriving counts.

Exposition follows the Prometheus text format (version 0.0.4)::

    # HELP repro_task_attempts_total Task attempts by outcome.
    # TYPE repro_task_attempts_total counter
    repro_task_attempts_total{outcome="succeeded",stage="0"} 4

`parse_exposition` is the matching reader — used by the CI smoke test
to assert well-formedness without a prometheus client dependency.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Any, Iterable

from ..engine.metrics import TaskMetrics

if TYPE_CHECKING:  # avoid a cycle: dbscan.spark_job imports repro.obs
    from ..dbscan.partial import OpCounters

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "record_checkpoint",
    "record_op_counters",
    "record_task_metrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds — tuned for task/phase durations.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labelnames: tuple[str, ...], labels: dict[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[ln]) for ln in labelnames)


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


class _Instrument:
    """Shared machinery: name, help, declared labelnames, per-label cells."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for ln in self.labelnames:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r}")

    def _sample_lines(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def expose(self) -> str:
        """HELP/TYPE header plus every sample line."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(self._sample_lines())
        return "\n".join(lines)

    def _labelstr(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [f'{ln}="{_escape(v)}"' for ln, v in zip(self.labelnames, key)]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled cell."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count of the labelled cell (0 if never touched)."""
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def _sample_lines(self) -> list[str]:
        return [
            f"{self.name}{self._labelstr(k)} {_fmt_value(v)}"
            for k, v in sorted(self._values.items())
        ]


class Gauge(_Instrument):
    """Value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled cell."""
        self._values[_label_key(self.labelnames, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Adjust the labelled cell by ``amount`` (may be negative)."""
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled cell (0 if never set)."""
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def _sample_lines(self) -> list[str]:
        return [
            f"{self.name}{self._labelstr(k)} {_fmt_value(v)}"
            for k, v in sorted(self._values.items())
        ]


class Histogram(_Instrument):
    """Cumulative-bucket histogram of observations."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bs = sorted(float(b) for b in buckets)
        if not bs:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = tuple(bs)
        # per-label: (bucket counts incl. +Inf, sum, count)
        self._cells: dict[tuple[str, ...], tuple[list[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled cell."""
        key = _label_key(self.labelnames, labels)
        counts, total, n = self._cells.get(
            key, ([0] * (len(self.buckets) + 1), 0.0, 0)
        )
        for i, b in enumerate(self.buckets):
            if value <= b:
                counts[i] += 1
        counts[-1] += 1  # +Inf
        self._cells[key] = (counts, total + value, n + 1)

    def count(self, **labels: Any) -> int:
        """Number of observations in the labelled cell."""
        cell = self._cells.get(_label_key(self.labelnames, labels))
        return cell[2] if cell else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observations in the labelled cell."""
        cell = self._cells.get(_label_key(self.labelnames, labels))
        return cell[1] if cell else 0.0

    def _sample_lines(self) -> list[str]:
        lines = []
        for key, (counts, total, n) in sorted(self._cells.items()):
            for b, c in zip((*self.buckets, math.inf), counts):
                le = f'le="{_fmt_value(b)}"'
                lines.append(
                    f"{self.name}_bucket{self._labelstr(key, le)} {c}"
                )
            lines.append(f"{self.name}_sum{self._labelstr(key)} {_fmt_value(total)}")
            lines.append(f"{self.name}_count{self._labelstr(key)} {n}")
        return lines


class MetricsRegistry:
    """Holds named instruments; repeated registration returns the original."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Iterable[str], **kwargs: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}{existing.labelnames}"
                )
            return existing
        inst = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = inst
        return inst

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        """Register (or fetch) a counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        """Register (or fetch) a gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """Register (or fetch) a histogram."""
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        """Look an instrument up by name."""
        return self._instruments.get(name)

    def exposition(self) -> str:
        """Full Prometheus text exposition, newline-terminated."""
        blocks = [
            inst.expose() for _name, inst in sorted(self._instruments.items())
        ]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def write(self, path: str) -> None:
        """Write the exposition to a file."""
        with open(path, "w") as f:
            f.write(self.exposition())


# ---------------------------------------------------------------------------
# Bridges from the existing metric silos.
# ---------------------------------------------------------------------------


def record_task_metrics(registry: MetricsRegistry, tm: TaskMetrics) -> None:
    """Fold one task attempt's `TaskMetrics` into the registry."""
    outcome = "succeeded" if tm.succeeded else "failed"
    registry.counter(
        "repro_task_attempts_total", "Task attempts by stage and outcome.",
        ("stage", "outcome"),
    ).inc(stage=tm.stage_id, outcome=outcome)
    registry.histogram(
        "repro_task_run_seconds", "Task attempt run time.", ("stage",),
    ).observe(tm.run_time, stage=tm.stage_id)
    if tm.shuffle_bytes_written:
        registry.counter(
            "repro_shuffle_bytes_written_total",
            "Bytes written to shuffle buckets.", ("stage",),
        ).inc(tm.shuffle_bytes_written, stage=tm.stage_id)
    if tm.shuffle_bytes_read:
        registry.counter(
            "repro_shuffle_bytes_read_total",
            "Bytes fetched from shuffle buckets.", ("stage",),
        ).inc(tm.shuffle_bytes_read, stage=tm.stage_id)


def record_op_counters(
    registry: MetricsRegistry, oc: OpCounters, partition: int | str = "all"
) -> None:
    """Fold one executor's `OpCounters` into the registry."""
    c = registry.counter(
        "repro_dbscan_ops_total",
        "Section III-B operation counts from local DBSCAN expansion.",
        ("op", "partition"),
    )
    for op in (
        "range_queries", "queue_adds", "queue_removes",
        "hashtable_puts", "hashtable_lookups", "seeds_placed", "seeds_skipped",
    ):
        count = getattr(oc, op)
        if count:
            c.inc(count, op=op, partition=partition)


def record_merge_outcome(
    registry: MetricsRegistry,
    num_merges: int,
    num_global_clusters: int,
    overlapping_points: int,
) -> None:
    """Surface the driver merge's `MergeOutcome` stats as gauges."""
    registry.gauge(
        "repro_merge_merges",
        "Successful partial-cluster unions performed by the driver merge.",
    ).set(num_merges)
    registry.gauge(
        "repro_merge_global_clusters",
        "Global clusters after the driver merge.",
    ).set(num_global_clusters)
    registry.gauge(
        "repro_merge_overlapping_points",
        "Unfollowed merge evidence left by the paper strategy (0 for "
        "union_find).",
    ).set(overlapping_points)


def record_checkpoint(registry: MetricsRegistry, stage: str, hit: bool) -> None:
    """Count one pipeline checkpoint decision (restored = hit, written = miss)."""
    name = (
        "repro_checkpoint_hits_total" if hit else "repro_checkpoint_misses_total"
    )
    help_text = (
        "Pipeline stages restored from checkpoint." if hit
        else "Pipeline stages executed and checkpointed."
    )
    registry.counter(name, help_text, ("stage",)).inc(stage=stage)


# ---------------------------------------------------------------------------
# Exposition parsing (for smoke tests / CI well-formedness checks).
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape(value: str) -> str:
    return _UNESCAPE_RE.sub(lambda m: _UNESCAPES.get(m.group(1), m.group(0)), value)


def parse_exposition(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse a Prometheus text exposition into name -> [(labels, value)].

    Raises ValueError on any line that is neither a comment nor a
    well-formed sample — the CI smoke step relies on this.
    """
    out: dict[str, list[tuple[dict[str, str], float]]] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) < 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels = {
            k: _unescape(v)
            for k, v in _LABEL_PAIR_RE.findall(m.group("labels") or "")
        }
        raw = m.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        out.setdefault(m.group("name"), []).append((labels, value))
    for name in out:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            raise ValueError(f"sample {name!r} has no preceding TYPE line")
    return out
